"""QuantumCircuit container behaviour."""

import numpy as np
import pytest

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import make_gate
from repro.circuits.parameters import Parameter
from repro.simulators.statevector import circuit_unitary


class TestConstruction:
    def test_fluent_chaining(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.5, 1)
        assert qc.size() == 3

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError, match="out of range"):
            QuantumCircuit(2).h(2)

    def test_negative_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).h(-1)

    def test_duplicate_qubits_in_two_qubit_gate(self):
        with pytest.raises(ValueError, match="duplicate"):
            QuantumCircuit(2).cx(1, 1)

    def test_append_named_unknown_gate(self):
        with pytest.raises(KeyError):
            QuantumCircuit(1).append_named("bogus", [0])

    def test_instruction_validates_arity(self):
        with pytest.raises(ValueError, match="acts on 2"):
            Instruction(make_gate("cx"), (0,))


class TestStructure:
    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(3).h(0).h(1).h(2)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(1).h(0).x(0).h(0)
        assert qc.depth() == 3

    def test_depth_two_qubit_coupling(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        assert qc.depth() == 3

    def test_empty_depth(self):
        assert QuantumCircuit(4).depth() == 0

    def test_count_ops_sorted(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        counts = qc.count_ops()
        assert counts == {"h": 2, "cx": 1}
        assert list(counts)[0] == "h"

    def test_two_qubit_interactions(self):
        qc = QuantumCircuit(4).cx(2, 0).cz(1, 3).cx(0, 2)
        assert qc.two_qubit_interactions() == {(0, 2), (1, 3)}

    def test_len_and_iter(self):
        qc = QuantumCircuit(2).h(0).x(1)
        assert len(qc) == 2
        assert [i.gate.name for i in qc] == ["h", "x"]


class TestParameters:
    def test_parameters_collected(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(2).rx(a, 0).ry(2 * b, 1).rz(a + b, 0)
        assert qc.parameters == frozenset({a, b})

    def test_sorted_parameters_by_name(self):
        g, b = Parameter("gamma"), Parameter("beta")
        qc = QuantumCircuit(1).rx(g, 0).ry(b, 0)
        assert [p.name for p in qc.sorted_parameters()] == ["beta", "gamma"]

    def test_bind_full(self):
        a = Parameter("a")
        qc = QuantumCircuit(1).rx(2 * a, 0)
        bound = qc.bind_parameters({a: 0.5})
        assert not bound.parameters
        assert bound.instructions[0].gate.params[0] == 1.0

    def test_bind_partial(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1).rx(a, 0).ry(b, 0)
        bound = qc.bind_parameters({a: 1.0})
        assert bound.parameters == frozenset({b})

    def test_bind_does_not_mutate_original(self):
        a = Parameter("a")
        qc = QuantumCircuit(1).rx(a, 0)
        qc.bind_parameters({a: 1.0})
        assert qc.parameters == frozenset({a})

    def test_shared_parameter_binds_everywhere(self):
        beta = Parameter("beta")
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.rx(2 * beta, q)
        bound = qc.bind_parameters({beta: 0.25})
        angles = [i.gate.params[0] for i in bound.instructions]
        assert angles == [0.5, 0.5, 0.5]


class TestTransformation:
    def test_compose_widths_must_match(self):
        with pytest.raises(ValueError, match="compose"):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_compose_order(self):
        qc = QuantumCircuit(1).x(0).compose(QuantumCircuit(1).h(0))
        assert [i.gate.name for i in qc] == ["x", "h"]

    def test_compose_leaves_operands_unchanged(self):
        left, right = QuantumCircuit(1).x(0), QuantumCircuit(1).h(0)
        left.compose(right)
        assert left.size() == 1 and right.size() == 1

    def test_inverse_unitary(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.7, 1).ry(-0.3, 0)
        u = circuit_unitary(qc)
        u_inv = circuit_unitary(qc.inverse())
        np.testing.assert_allclose(u @ u_inv, np.eye(4), atol=1e-12)

    def test_repeat(self):
        qc = QuantumCircuit(1).rx(0.1, 0).repeat(3)
        assert qc.size() == 3

    def test_repeat_zero(self):
        assert QuantumCircuit(1).h(0).repeat(0).size() == 0

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1).h(0)
        clone = qc.copy()
        clone.x(0)
        assert qc.size() == 1 and clone.size() == 2

    def test_equality(self):
        a = QuantumCircuit(1).h(0)
        b = QuantumCircuit(1).h(0)
        assert a == b
        b.x(0)
        assert a != b

    def test_repr_contains_counts(self):
        assert "hx1" in repr(QuantumCircuit(1).h(0))
