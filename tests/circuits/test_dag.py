"""CircuitDag wiring and layering."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag


class TestWiring:
    def test_wire_neighbours(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        dag = CircuitDag(qc)
        assert dag.predecessor(1, 0).gate_name == "h"
        assert dag.predecessor(1, 1) is None
        assert dag.successor(1, 1).gate_name == "x"
        assert dag.successor(1, 0) is None

    def test_boundary_nodes(self):
        dag = CircuitDag(QuantumCircuit(1).h(0))
        assert dag.predecessor(0, 0) is None
        assert dag.successor(0, 0) is None

    def test_len(self):
        assert len(CircuitDag(QuantumCircuit(2).h(0).h(1))) == 2


class TestLayers:
    def test_parallel_single_layer(self):
        dag = CircuitDag(QuantumCircuit(3).h(0).h(1).h(2))
        layers = dag.layers()
        assert len(layers) == 1
        assert len(layers[0]) == 3

    def test_layers_match_depth(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).x(0)
        assert len(CircuitDag(qc).layers()) == qc.depth()

    def test_independent_gates_share_layer(self):
        qc = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        layers = CircuitDag(qc).layers()
        assert len(layers) == 1

    def test_empty_circuit(self):
        assert CircuitDag(QuantumCircuit(2)).layers() == []


class TestRebuild:
    def test_roundtrip(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).rz(0.4, 2).cx(1, 2)
        assert CircuitDag(qc).to_circuit() == qc

    def test_skip_removes_nodes(self):
        qc = QuantumCircuit(2).h(0).x(0).h(1)
        rebuilt = CircuitDag(qc).to_circuit(skip=[1])
        assert [i.gate.name for i in rebuilt] == ["h", "h"]

    def test_topological_order_is_program_order(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        order = CircuitDag(qc).topological_order()
        assert [n.index for n in order] == [0, 1, 2]
