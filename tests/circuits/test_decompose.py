"""ZYZ decomposition and single-qubit run fusion."""

import cmath

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import fuse_single_qubit_runs, zyz_decompose
from repro.circuits.gates import make_gate
from repro.circuits.parameters import Parameter
from repro.simulators.statevector import circuit_unitary


def _reconstruct(theta, phi, lam, phase):
    return cmath.exp(1j * phase) * make_gate("u3", theta, phi, lam).matrix()


def _random_unitary(rng):
    a = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(a)
    return q @ np.diag(np.diag(r) / np.abs(np.diag(r)))


def assert_same_up_to_phase(u1, u2, atol=1e-8):
    idx = np.unravel_index(np.argmax(np.abs(u1)), u1.shape)
    ratio = u1[idx] / u2[idx]
    assert abs(abs(ratio) - 1) < atol
    np.testing.assert_allclose(u1, ratio * u2, atol=atol)


class TestZYZ:
    def test_random_unitaries_exact(self, rng):
        for _ in range(25):
            u = _random_unitary(rng)
            np.testing.assert_allclose(_reconstruct(*zyz_decompose(u)), u, atol=1e-9)

    @pytest.mark.parametrize("name", ["id", "x", "y", "z", "h", "s", "t", "sdg"])
    def test_named_gates(self, name):
        m = make_gate(name).matrix()
        np.testing.assert_allclose(_reconstruct(*zyz_decompose(m)), m, atol=1e-9)

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    def test_rotations(self, name):
        for angle in (0.0, 0.3, np.pi, -2.1, 2 * np.pi):
            m = make_gate(name, angle).matrix()
            np.testing.assert_allclose(_reconstruct(*zyz_decompose(m)), m, atol=1e-9)

    def test_diagonal_gimbal_lock(self):
        m = np.diag([np.exp(0.4j), np.exp(-0.9j)])
        np.testing.assert_allclose(_reconstruct(*zyz_decompose(m)), m, atol=1e-9)

    def test_antidiagonal_gimbal_lock(self):
        m = np.array([[0, np.exp(0.3j)], [np.exp(-0.7j), 0]])
        np.testing.assert_allclose(_reconstruct(*zyz_decompose(m)), m, atol=1e-9)

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError, match="unitary"):
            zyz_decompose(np.array([[1.0, 0.0], [0.0, 2.0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="2x2"):
            zyz_decompose(np.eye(4))


class TestFusion:
    def test_run_collapses_to_one_u3(self):
        qc = QuantumCircuit(1).h(0).t(0).s(0).x(0)
        fused = fuse_single_qubit_runs(qc)
        assert fused.size() == 1
        assert fused.instructions[0].gate.name == "u3"
        assert_same_up_to_phase(circuit_unitary(qc), circuit_unitary(fused))

    def test_two_qubit_gate_breaks_runs(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        fused = fuse_single_qubit_runs(qc)
        # four length-1 runs survive (below min_run), cx in the middle
        assert fused.count_ops()["cx"] == 1
        assert_same_up_to_phase(circuit_unitary(qc), circuit_unitary(fused))

    def test_min_run_respected(self):
        qc = QuantumCircuit(1).h(0)
        assert fuse_single_qubit_runs(qc).instructions[0].gate.name == "h"

    def test_symbolic_gates_left_alone(self):
        beta = Parameter("beta")
        qc = QuantumCircuit(1).rx(2 * beta, 0).h(0).t(0)
        fused = fuse_single_qubit_runs(qc)
        assert "rx" in fused.count_ops()
        assert fused.parameters == frozenset({beta})

    def test_random_circuits_preserved(self):
        for seed in range(5):
            qc = random_circuit(3, 30, seed=300 + seed)
            fused = fuse_single_qubit_runs(qc)
            assert fused.size() <= qc.size()
            assert_same_up_to_phase(circuit_unitary(qc), circuit_unitary(fused))

    def test_fusion_reduces_bound_mixer_depth(self):
        """A bound two-rotation mixer column fuses to one u3 per qubit."""
        from repro.qaoa.mixers import mixer_layer

        beta = Parameter("beta")
        bound = mixer_layer(4, ("rx", "ry"), beta).bind_parameters({beta: 0.37})
        fused = fuse_single_qubit_runs(bound)
        assert fused.count_ops() == {"u3": 4}
        assert_same_up_to_phase(circuit_unitary(bound), circuit_unitary(fused))
