"""Gate matrices: unitarity, special values, inverses, diagonality flags."""

import cmath
import math

import numpy as np
import pytest

from repro.circuits.gates import GATE_REGISTRY, Gate, gate_matrix, make_gate
from repro.circuits.parameters import Parameter


def _random_params(spec, rng):
    return [float(v) for v in rng.uniform(-np.pi, np.pi, size=spec.num_params)]


class TestRegistry:
    def test_expected_gates_present(self):
        for name in ["id", "x", "y", "z", "h", "s", "t", "rx", "ry", "rz", "p",
                     "cx", "cz", "cp", "rzz", "rxx", "swap", "u3"]:
            assert name in GATE_REGISTRY

    def test_unknown_gate_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known gates"):
            make_gate("nonexistent")

    def test_all_matrices_unitary(self):
        rng = np.random.default_rng(0)
        for spec in GATE_REGISTRY.values():
            params = _random_params(spec, rng)
            m = spec.matrix_fn(params)
            dim = 2**spec.num_qubits
            assert m.shape == (dim, dim)
            np.testing.assert_allclose(m @ m.conj().T, np.eye(dim), atol=1e-12)

    def test_diagonal_flags_truthful(self):
        rng = np.random.default_rng(1)
        for spec in GATE_REGISTRY.values():
            params = _random_params(spec, rng)
            m = spec.matrix_fn(params)
            is_diag = np.allclose(m, np.diag(np.diag(m)))
            assert spec.is_diagonal == is_diag, spec.name

    def test_self_inverse_flags_truthful(self):
        for spec in GATE_REGISTRY.values():
            if spec.num_params:
                continue
            m = spec.matrix_fn([])
            dim = 2**spec.num_qubits
            claims = spec.is_self_inverse
            actual = np.allclose(m @ m, np.eye(dim), atol=1e-12)
            assert claims == actual, spec.name


class TestSpecialValues:
    def test_rx_pi_is_minus_i_x(self):
        np.testing.assert_allclose(
            gate_matrix("rx", math.pi), -1j * gate_matrix("x"), atol=1e-12
        )

    def test_ry_pi_is_minus_i_y(self):
        np.testing.assert_allclose(
            gate_matrix("ry", math.pi), -1j * gate_matrix("y"), atol=1e-12
        )

    def test_rz_pi_is_minus_i_z(self):
        np.testing.assert_allclose(
            gate_matrix("rz", math.pi), -1j * gate_matrix("z"), atol=1e-12
        )

    def test_zero_rotations_are_identity(self):
        for name in ("rx", "ry", "rz", "p"):
            np.testing.assert_allclose(gate_matrix(name, 0.0), np.eye(2), atol=1e-15)
        for name in ("rzz", "rxx", "cp"):
            np.testing.assert_allclose(gate_matrix(name, 0.0), np.eye(4), atol=1e-15)

    def test_p_pi_is_z(self):
        np.testing.assert_allclose(gate_matrix("p", math.pi), gate_matrix("z"), atol=1e-12)

    def test_p_vs_rz_differ_by_global_phase(self):
        theta = 0.7
        ratio = gate_matrix("p", theta) @ np.linalg.inv(gate_matrix("rz", theta))
        np.testing.assert_allclose(ratio, np.eye(2) * ratio[0, 0], atol=1e-12)
        assert abs(abs(ratio[0, 0]) - 1) < 1e-12

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        np.testing.assert_allclose(s @ s, gate_matrix("z"), atol=1e-12)

    def test_t_squared_is_s(self):
        t = gate_matrix("t")
        np.testing.assert_allclose(t @ t, gate_matrix("s"), atol=1e-12)

    def test_h_conjugates_x_to_z(self):
        h = gate_matrix("h")
        np.testing.assert_allclose(h @ gate_matrix("x") @ h, gate_matrix("z"), atol=1e-12)

    def test_cx_permutation_structure(self):
        # |q1 q0> basis: control is q0 (low bit)
        cx = gate_matrix("cx")
        assert cx[3, 1] == 1 and cx[1, 3] == 1  # 01 <-> 11
        assert cx[0, 0] == 1 and cx[2, 2] == 1

    def test_rzz_diagonal_values(self):
        theta = 0.9
        m = gate_matrix("rzz", theta)
        e_m, e_p = cmath.exp(-0.5j * theta), cmath.exp(0.5j * theta)
        np.testing.assert_allclose(np.diag(m), [e_m, e_p, e_p, e_m], atol=1e-12)

    def test_u3_reduces_to_ry(self):
        theta = 1.1
        np.testing.assert_allclose(
            gate_matrix("u3", theta, 0.0, 0.0), gate_matrix("ry", theta), atol=1e-12
        )


class TestGateInstances:
    def test_wrong_param_count(self):
        with pytest.raises(ValueError, match="takes 1 parameter"):
            make_gate("rx")
        with pytest.raises(ValueError):
            make_gate("h", 0.5)

    def test_symbolic_parameters_tracked(self):
        beta = Parameter("beta")
        g = make_gate("rx", 2 * beta)
        assert g.parameters == frozenset({beta})

    def test_matrix_requires_binding(self):
        beta = Parameter("beta")
        g = make_gate("rx", 2 * beta)
        with pytest.raises(ValueError):
            g.matrix()
        m = g.matrix({beta: math.pi / 2})
        np.testing.assert_allclose(m, gate_matrix("rx", math.pi), atol=1e-12)

    def test_bind_partial_keeps_symbolic(self):
        a, b = Parameter("a"), Parameter("b")
        g = make_gate("u3", a, b, 0.0)
        g2 = g.bind({a: 1.0})
        assert g2.parameters == frozenset({b})

    def test_inverse_of_rotation_negates(self):
        g = make_gate("ry", 0.7)
        gi = g.inverse()
        np.testing.assert_allclose(g.matrix() @ gi.matrix(), np.eye(2), atol=1e-12)

    def test_inverse_of_self_inverse(self):
        assert make_gate("h").inverse() == make_gate("h")

    def test_inverse_of_s_is_sdg(self):
        assert make_gate("s").inverse().name == "sdg"
        assert make_gate("tdg").inverse().name == "t"

    def test_inverse_composes_to_identity_for_all(self):
        rng = np.random.default_rng(5)
        for name, spec in GATE_REGISTRY.items():
            if name == "u3":
                continue  # no registry inverse for generic u3
            g = make_gate(name, *_random_params(spec, rng))
            dim = 2**spec.num_qubits
            np.testing.assert_allclose(
                g.matrix() @ g.inverse().matrix(), np.eye(dim), atol=1e-12, err_msg=name
            )

    def test_u3_inverse_not_implemented(self):
        with pytest.raises(NotImplementedError):
            make_gate("u3", 1.0, 2.0, 3.0).inverse()

    def test_repr(self):
        assert repr(make_gate("h")) == "h"
        assert "rx" in repr(make_gate("rx", 0.5))
