"""Parameter and ParameterExpression algebra."""

import numpy as np
import pytest

from repro.circuits.parameters import Parameter, ParameterExpression, bind_value


class TestParameter:
    def test_name(self):
        assert Parameter("beta").name == "beta"

    def test_identity_not_name_equality(self):
        a, b = Parameter("beta"), Parameter("beta")
        assert a != b
        assert a == a

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Parameter("")

    def test_rejects_non_string_name(self):
        with pytest.raises(ValueError):
            Parameter(3)

    def test_is_its_own_expression(self):
        p = Parameter("x")
        assert p.parameters == frozenset({p})
        assert p.terms == {p: 1.0}
        assert p.offset == 0.0

    def test_hashable_distinct(self):
        params = {Parameter("a"), Parameter("a"), Parameter("b")}
        assert len(params) == 3


class TestExpressionAlgebra:
    def test_scalar_multiply(self):
        beta = Parameter("beta")
        expr = 2 * beta
        assert expr.terms == {beta: 2.0}

    def test_right_and_left_multiply_agree(self):
        beta = Parameter("beta")
        assert 2 * beta == beta * 2

    def test_add_constant(self):
        beta = Parameter("beta")
        expr = beta + 1.5
        assert expr.offset == 1.5
        assert expr.terms == {beta: 1.0}

    def test_radd_constant(self):
        beta = Parameter("beta")
        assert (1.5 + beta) == (beta + 1.5)

    def test_add_two_parameters(self):
        a, b = Parameter("a"), Parameter("b")
        expr = a + b
        assert expr.terms == {a: 1.0, b: 1.0}

    def test_subtract_cancels(self):
        a = Parameter("a")
        expr = (2 * a) - (2 * a)
        assert expr.is_constant()
        assert expr.constant_value() == 0.0

    def test_rsub(self):
        a = Parameter("a")
        expr = 1.0 - a
        assert expr.terms == {a: -1.0}
        assert expr.offset == 1.0

    def test_negation(self):
        a = Parameter("a")
        assert (-a).terms == {a: -1.0}

    def test_division(self):
        a = Parameter("a")
        assert (a / 2).terms == {a: 0.5}

    def test_zero_coefficient_dropped(self):
        a = Parameter("a")
        expr = 0 * a
        assert expr.is_constant()
        assert expr.parameters == frozenset()

    def test_multiply_by_non_scalar_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(TypeError):
            _ = a * b  # nonlinear terms are out of scope


class TestBinding:
    def test_full_binding(self):
        beta = Parameter("beta")
        expr = 2 * beta + 1
        assert expr.bind({beta: 0.5}).constant_value() == 2.0

    def test_partial_binding(self):
        a, b = Parameter("a"), Parameter("b")
        expr = a + 3 * b
        bound = expr.bind({b: 2.0})
        assert bound.terms == {a: 1.0}
        assert bound.offset == 6.0

    def test_constant_value_raises_when_free(self):
        a = Parameter("a")
        with pytest.raises(ValueError, match="depends on parameters"):
            (a + 1).constant_value()

    def test_bind_value_float_passthrough(self):
        assert bind_value(1.25, {}) == 1.25

    def test_bind_value_expression(self):
        a = Parameter("a")
        assert bind_value(2 * a, {a: 3.0}) == 6.0

    def test_bind_value_unbound_raises(self):
        a = Parameter("a")
        with pytest.raises(ValueError):
            bind_value(2 * a, {})

    def test_numpy_scalar_binding(self):
        a = Parameter("a")
        assert (2 * a).bind({a: np.float64(0.25)}).constant_value() == 0.5


class TestEqualityAndRepr:
    def test_expression_equality(self):
        a = Parameter("a")
        assert (2 * a + 1) == (a * 2 + 1)

    def test_constant_expression_equals_number(self):
        a = Parameter("a")
        assert (0 * a + 2.0) == 2.0

    def test_hash_consistency(self):
        a = Parameter("a")
        assert hash(2 * a) == hash(a * 2)

    def test_repr_mentions_name_and_coeff(self):
        beta = Parameter("beta")
        assert "beta" in repr(2 * beta)
        assert "2" in repr(2 * beta)

    def test_shared_parameter_across_expressions(self):
        beta = Parameter("beta")
        e1, e2 = 2 * beta, 4 * beta
        bound = {beta: 0.5}
        assert e1.bind(bound).constant_value() == 1.0
        assert e2.bind(bound).constant_value() == 2.0
