"""OpenQASM 2 export / import round-trips."""

import math

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.circuits.qasm import QasmError, from_qasm, to_qasm
from repro.simulators.statevector import circuit_unitary


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(QuantumCircuit(3).h(0))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_parameterized_gate_formatting(self):
        text = to_qasm(QuantumCircuit(1).rx(0.5, 0))
        assert "rx(0.5) q[0];" in text

    def test_two_qubit_gate(self):
        text = to_qasm(QuantumCircuit(2).cx(1, 0))
        assert "cx q[1],q[0];" in text

    def test_unbound_parameters_rejected(self):
        beta = Parameter("beta")
        with pytest.raises(QasmError, match="beta"):
            to_qasm(QuantumCircuit(1).rx(beta, 0))


class TestImport:
    def test_parses_pi_expressions(self):
        qc = from_qasm('OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\n')
        assert qc.instructions[0].gate.params[0] == pytest.approx(math.pi / 2)

    def test_comments_and_blank_lines_ignored(self):
        qc = from_qasm(
            "OPENQASM 2.0;\n// a comment\n\nqreg q[2];\nh q[0]; // trailing\ncx q[0],q[1];\n"
        )
        assert qc.size() == 2

    def test_missing_qreg(self):
        with pytest.raises(QasmError, match="qreg"):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_gate_before_qreg(self):
        with pytest.raises(QasmError):
            from_qasm("h q[0];\nqreg q[1];\n")

    def test_unknown_gate(self):
        with pytest.raises(QasmError, match="unknown gate"):
            from_qasm("qreg q[1];\nfoo q[0];\n")

    def test_malformed_line(self):
        with pytest.raises(QasmError, match="cannot parse"):
            from_qasm("qreg q[1];\nthis is not qasm\n")

    def test_evil_parameter_expression_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1];\nrx(__import__) q[0];\n")


class TestRoundTrip:
    def test_simple_roundtrip(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.25, 1)
        rebuilt = from_qasm(to_qasm(qc))
        assert rebuilt == qc

    def test_random_circuit_roundtrip_semantics(self):
        for seed in range(4):
            qc = random_circuit(3, 20, seed=seed)
            rebuilt = from_qasm(to_qasm(qc))
            np.testing.assert_allclose(
                circuit_unitary(rebuilt), circuit_unitary(qc), atol=1e-12
            )

    def test_angle_precision_survives(self):
        angle = 0.12345678901234567
        qc = QuantumCircuit(1).rx(angle, 0)
        rebuilt = from_qasm(to_qasm(qc))
        assert rebuilt.instructions[0].gate.params[0] == pytest.approx(angle, abs=1e-16)
