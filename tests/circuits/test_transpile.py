"""Transpile passes preserve semantics while shrinking circuits."""

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.circuits.transpile import (
    cancel_inverse_pairs,
    drop_identities,
    merge_rotations,
    simplify,
)
from repro.simulators.statevector import circuit_unitary


def assert_same_unitary(a, b, atol=1e-10):
    np.testing.assert_allclose(circuit_unitary(a), circuit_unitary(b), atol=atol)


class TestMergeRotations:
    def test_adjacent_rx_merge(self):
        qc = QuantumCircuit(1).rx(0.3, 0).rx(0.4, 0)
        merged = merge_rotations(qc)
        assert merged.size() == 1
        assert merged.instructions[0].gate.params[0] == pytest.approx(0.7)

    def test_different_axes_do_not_merge(self):
        qc = QuantumCircuit(1).rx(0.3, 0).ry(0.4, 0)
        assert merge_rotations(qc).size() == 2

    def test_interleaved_other_qubit_does_not_block(self):
        qc = QuantumCircuit(2).rx(0.3, 0).h(1).rx(0.4, 0)
        merged = merge_rotations(qc)
        assert merged.count_ops()["rx"] == 1

    def test_gate_between_blocks_merge(self):
        qc = QuantumCircuit(1).rx(0.3, 0).h(0).rx(0.4, 0)
        assert merge_rotations(qc).count_ops()["rx"] == 2

    def test_rzz_merges_on_same_pair(self):
        qc = QuantumCircuit(2).rzz(0.2, 0, 1).rzz(0.3, 0, 1)
        merged = merge_rotations(qc)
        assert merged.size() == 1
        assert merged.instructions[0].gate.params[0] == pytest.approx(0.5)

    def test_rzz_different_pairs_do_not_merge(self):
        qc = QuantumCircuit(3).rzz(0.2, 0, 1).rzz(0.3, 1, 2)
        assert merge_rotations(qc).size() == 2

    def test_symbolic_angles_merge(self):
        beta = Parameter("beta")
        qc = QuantumCircuit(1).rx(2 * beta, 0).rx(2 * beta, 0)
        merged = merge_rotations(qc)
        assert merged.size() == 1
        assert merged.instructions[0].gate.params[0] == 4 * beta

    def test_chain_of_three(self):
        qc = QuantumCircuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0)
        merged = merge_rotations(qc)
        assert merged.size() == 1
        assert merged.instructions[0].gate.params[0] == pytest.approx(0.6)

    def test_semantics_preserved(self):
        qc = QuantumCircuit(2).rx(0.3, 0).rx(0.4, 0).rzz(0.2, 0, 1).rzz(0.1, 0, 1)
        assert_same_unitary(qc, merge_rotations(qc))


class TestCancelInversePairs:
    def test_hh_cancels(self):
        qc = QuantumCircuit(1).h(0).h(0)
        assert cancel_inverse_pairs(qc).size() == 0

    def test_xx_cancels(self):
        assert cancel_inverse_pairs(QuantumCircuit(1).x(0).x(0)).size() == 0

    def test_cx_cx_cancels(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert cancel_inverse_pairs(qc).size() == 0

    def test_cx_reversed_does_not_cancel(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert cancel_inverse_pairs(qc).size() == 2

    def test_blocked_by_intervening_gate(self):
        qc = QuantumCircuit(1).h(0).x(0).h(0)
        assert cancel_inverse_pairs(qc).size() == 3

    def test_partial_wire_adjacency_blocks(self):
        # cx pair adjacent on qubit 0 but separated on qubit 1
        qc = QuantumCircuit(2).cx(0, 1).x(1).cx(0, 1)
        assert cancel_inverse_pairs(qc).size() == 3

    def test_semantics_preserved(self):
        qc = QuantumCircuit(2).h(0).h(0).cx(0, 1).x(1).x(1).cx(0, 1)
        assert_same_unitary(qc, cancel_inverse_pairs(qc))


class TestDropIdentities:
    def test_id_gates_dropped(self):
        qc = QuantumCircuit(1).id(0).h(0).id(0)
        assert drop_identities(qc).size() == 1

    def test_zero_rotation_dropped(self):
        qc = QuantumCircuit(1).rx(0.0, 0).ry(0.1, 0)
        assert drop_identities(qc).size() == 1

    def test_nonzero_rotation_kept(self):
        assert drop_identities(QuantumCircuit(1).rx(0.1, 0)).size() == 1


class TestSimplifyFixedPoint:
    def test_opposite_rotations_vanish(self):
        qc = QuantumCircuit(1).rx(0.4, 0).rx(-0.4, 0)
        assert simplify(qc).size() == 0

    def test_cascading_cancellation(self):
        # merging rx(+a) rx(-a) creates rx(0), which drops, exposing h..h
        qc = QuantumCircuit(1).h(0).rx(0.4, 0).rx(-0.4, 0).h(0)
        assert simplify(qc).size() == 0

    def test_idempotent(self):
        qc = random_circuit(4, 30, seed=9)
        once = simplify(qc)
        assert simplify(once) == once

    def test_random_circuits_preserve_semantics(self):
        for seed in range(5):
            qc = random_circuit(3, 25, seed=seed)
            assert_same_unitary(qc, simplify(qc))

    def test_simplify_never_grows(self):
        for seed in range(5):
            qc = random_circuit(3, 25, seed=100 + seed)
            assert simplify(qc).size() <= qc.size()
