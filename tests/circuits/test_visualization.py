"""ASCII circuit drawing."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.circuits.visualization import draw_circuit, gate_label
from repro.qaoa.mixers import mixer_layer


class TestGateLabel:
    def test_plain_gate(self):
        qc = QuantumCircuit(1).h(0)
        assert gate_label(qc.instructions[0]) == "H"

    def test_parameterized_gate(self):
        beta = Parameter("beta")
        qc = QuantumCircuit(1).rx(2 * beta, 0)
        assert gate_label(qc.instructions[0]) == "RX(2*beta)"


class TestDrawing:
    def test_one_row_per_qubit(self):
        text = draw_circuit(QuantumCircuit(3).h(0))
        assert len(text.splitlines()) == 3
        assert text.splitlines()[0].startswith("q0:")

    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        assert len(text.splitlines()) == 2

    def test_cx_drawn_with_control_and_target(self):
        text = draw_circuit(QuantumCircuit(2).cx(0, 1))
        assert "●" in text.splitlines()[0]
        assert "⊕" in text.splitlines()[1]

    def test_span_connector_through_middle_qubit(self):
        text = draw_circuit(QuantumCircuit(3).cx(0, 2))
        assert "│" in text.splitlines()[1]

    def test_parallel_gates_share_column(self):
        lines = draw_circuit(QuantumCircuit(2).h(0).h(1)).splitlines()
        assert lines[0].index("H") == lines[1].index("H")

    def test_fig6_mixer_drawing(self):
        """The paper's Fig. 6 layout: RX(2*beta) then RY(2*beta) per qubit."""
        beta = Parameter("beta")
        text = mixer_layer(10, ("rx", "ry"), beta).draw()
        lines = text.splitlines()
        assert len(lines) == 10
        for line in lines:
            assert "RX(2*beta)" in line
            assert "RY(2*beta)" in line
            assert line.index("RX") < line.index("RY")

    def test_draw_method_on_circuit(self):
        assert QuantumCircuit(1).h(0).draw() == draw_circuit(QuantumCircuit(1).h(0))

    def test_rows_equal_width(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).rx(0.5, 2).cz(1, 2)
        lines = draw_circuit(qc).splitlines()
        assert len({len(line) for line in lines}) == 1
