"""Shared fixtures: small graphs, ansätze, and RNGs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluator import EvaluationConfig
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_er_graph():
    """A connected 6-node ER instance (fixed seed)."""
    return erdos_renyi_graph(6, 0.5, seed=42, require_connected=True)


@pytest.fixture
def regular_graph():
    """A 6-node 3-regular instance (fixed seed)."""
    return random_regular_graph(6, 3, seed=42)


@pytest.fixture
def c5():
    return cycle_graph(5)


@pytest.fixture
def k4():
    return complete_graph(4)


@pytest.fixture
def p3():
    return path_graph(3)


@pytest.fixture
def fast_eval_config():
    """A small optimizer budget for tests that actually train circuits."""
    return EvaluationConfig(max_steps=12, seed=3)


def random_circuit(num_qubits: int, num_gates: int, seed: int = 0):
    """A random mixed 1q/2q circuit exercising every gate family."""
    from repro.circuits.circuit import QuantumCircuit

    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    one_q = ["h", "x", "y", "z", "s", "t", "sdg", "tdg"]
    rot = ["rx", "ry", "rz", "p"]
    two_q = ["cx", "cz", "swap"]
    rot2 = ["rzz", "rxx", "cp"]
    for _ in range(num_gates):
        choice = rng.random()
        q = int(rng.integers(num_qubits))
        if choice < 0.3:
            qc.append_named(str(rng.choice(one_q)), [q])
        elif choice < 0.6:
            qc.append_named(str(rng.choice(rot)), [q], float(rng.uniform(-3, 3)))
        elif num_qubits >= 2 and choice < 0.8:
            r = int(rng.integers(num_qubits - 1))
            r = r if r != q else num_qubits - 1
            qc.append_named(str(rng.choice(two_q)), [q, r])
        elif num_qubits >= 2:
            r = int(rng.integers(num_qubits - 1))
            r = r if r != q else num_qubits - 1
            qc.append_named(str(rng.choice(rot2)), [q, r], float(rng.uniform(-3, 3)))
        else:
            qc.h(q)
    return qc
