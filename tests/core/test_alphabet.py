"""Gate alphabet and search-space counting (pins the paper's 2500)."""

import numpy as np
import pytest

from repro.core.alphabet import (
    DEFAULT_TOKENS,
    GateAlphabet,
    count_sequences,
    enumerate_search_space,
    gate_sequences,
    paper_space_size,
)


class TestAlphabet:
    def test_default_is_paper_alphabet(self):
        assert DEFAULT_TOKENS == ("rx", "ry", "rz", "h", "p")
        assert GateAlphabet().size == 5

    def test_token_index_roundtrip(self):
        alphabet = GateAlphabet()
        for i, token in enumerate(alphabet):
            assert alphabet.index(token) == i
            assert alphabet.token(i) == token

    def test_unknown_token_lookup(self):
        with pytest.raises(KeyError):
            GateAlphabet().index("cx")

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            GateAlphabet().token(5)

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            GateAlphabet(("rx", "rx"))

    def test_unbuildable_tokens_rejected(self):
        with pytest.raises(ValueError, match="not buildable"):
            GateAlphabet(("rx", "warp_gate"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GateAlphabet(())

    def test_entangler_extension_allowed(self):
        alphabet = GateAlphabet(("rx", "cz_ring"))
        assert alphabet.size == 2

    def test_sample_sequence(self):
        alphabet = GateAlphabet()
        seq = alphabet.sample_sequence(3, np.random.default_rng(0))
        assert len(seq) == 3
        assert all(t in alphabet.tokens for t in seq)


class TestCounting:
    def test_sequences(self):
        assert count_sequences(5, 4) == 625

    def test_permutations(self):
        assert count_sequences(5, 2, ordered=True, repetition=False) == 20
        assert count_sequences(5, 6, ordered=True, repetition=False) == 0

    def test_combinations(self):
        assert count_sequences(5, 2, ordered=False, repetition=False) == 10

    def test_multisets(self):
        assert count_sequences(5, 2, ordered=False, repetition=True) == 15

    def test_counts_match_enumeration(self):
        alphabet = GateAlphabet()
        for ordered in (True, False):
            for repetition in (True, False):
                for k in (1, 2, 3):
                    listed = list(
                        gate_sequences(alphabet, k, ordered=ordered, repetition=repetition)
                    )
                    assert len(listed) == count_sequences(
                        5, k, ordered=ordered, repetition=repetition
                    )
                    assert len(set(listed)) == len(listed)

    def test_paper_2500(self):
        """§3.1: 2500 circuit combinations = 4 depths x 5^4 sequences."""
        assert paper_space_size() == 2500
        assert paper_space_size(p_max=4, k=4, alphabet_size=5) == 4 * 625


class TestSearchSpace:
    def test_sequences_space_size(self):
        space = enumerate_search_space(GateAlphabet(), 2, mode="sequences")
        assert len(space) == 5 + 25

    def test_combinations_space(self):
        space = enumerate_search_space(GateAlphabet(), 2, mode="combinations")
        assert len(space) == 5 + 10
        assert ("rx", "ry") in space

    def test_fig7_candidates_present(self):
        space = enumerate_search_space(GateAlphabet(), 2, mode="combinations")
        for mixer in [("ry", "p"), ("rx", "h"), ("h", "p"), ("rx", "ry")]:
            assert tuple(sorted(mixer, key=GateAlphabet().index)) in space or mixer in space

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            enumerate_search_space(GateAlphabet(), 2, mode="kitchen_sink")

    def test_no_duplicates(self):
        space = enumerate_search_space(GateAlphabet(), 3, mode="sequences")
        assert len(set(space)) == len(space)

    def test_lengths_bounded(self):
        space = enumerate_search_space(GateAlphabet(), 3, mode="sequences")
        assert all(1 <= len(s) <= 3 for s in space)


class TestKMin:
    def test_k_min_restricts_space(self):
        space = enumerate_search_space(GateAlphabet(), 2, k_min=2, mode="combinations")
        assert len(space) == 10
        assert all(len(s) == 2 for s in space)

    def test_k_min_default_is_one(self):
        space = enumerate_search_space(GateAlphabet(), 1)
        assert all(len(s) == 1 for s in space)

    def test_k_min_exceeding_k_max_rejected(self):
        with pytest.raises(ValueError, match="k_min"):
            enumerate_search_space(GateAlphabet(), 2, k_min=3)
