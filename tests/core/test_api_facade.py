"""repro.api: the stable facade — Config mapping, workloads, search()."""

import pytest

from repro import Config, search
from repro.api import resolve_workload, workload_to_wire
from repro.core.results import SearchResult
from repro.core.search import search_mixer
from repro.graphs.datasets import paper_er_dataset
from repro.graphs.generators import Graph


class TestConfig:
    def test_defaults_map_onto_internal_configs(self):
        config = Config()
        evaluation = config.evaluation_config()
        assert evaluation.optimizer == "cobyla"
        assert evaluation.max_steps == 60
        search_cfg = config.search_config(depths=3)
        assert search_cfg.p_max == 3
        assert search_cfg.evaluation == evaluation
        runtime = config.runtime_config()
        assert runtime.max_retries == 2
        assert runtime.cache_dir is None

    def test_every_field_reaches_its_internal_config(self):
        config = Config(
            k_min=2, k_max=3, mode="sequences", num_samples=5,
            optimizer="spsa", steps=9, restarts=2, seed=7,
            engine="statevector", metric="best_sampled", shots=11,
            shards=2, cache_dir="/tmp/x", cache_max_entries=10,
            resume=True, retries=4, job_timeout=1.5,
        )
        search_cfg = config.search_config(1)
        assert (search_cfg.k_min, search_cfg.k_max) == (2, 3)
        assert search_cfg.mode == "sequences"
        assert search_cfg.num_samples == 5
        evaluation = config.evaluation_config()
        assert evaluation.optimizer == "spsa"
        assert evaluation.max_steps == 9
        assert evaluation.restarts == 2
        assert evaluation.seed == 7
        assert evaluation.engine == "statevector"
        assert evaluation.metric == "best_sampled"
        assert evaluation.shots == 11
        runtime = config.runtime_config()
        assert runtime.shards == 2
        assert runtime.cache_dir == "/tmp/x"
        assert runtime.cache_max_entries == 10
        assert runtime.resume is True
        assert runtime.max_retries == 4
        assert runtime.job_timeout == 1.5

    def test_roundtrips_through_dict(self):
        config = Config(k_max=3, steps=12, optimizer="adam")
        assert Config.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="max_step"):
            Config.from_dict({"max_step": 10})


class TestWorkloads:
    def test_spec_string_forms(self):
        assert len(resolve_workload("er")) == 3  # default count
        assert len(resolve_workload("er:2")) == 2
        assert len(resolve_workload("regular:2:5")) == 2

    def test_spec_string_is_seeded(self):
        first = resolve_workload("er:2:11")
        again = resolve_workload("er:2:11")
        assert [g.edges for g in first] == [g.edges for g in again]
        other = resolve_workload("er:2:12")
        assert [g.edges for g in first] != [g.edges for g in other]

    def test_graph_sequences_pass_through(self):
        graphs = paper_er_dataset(2)
        assert resolve_workload(graphs) == list(graphs)

    def test_wire_dicts_roundtrip(self):
        graphs = paper_er_dataset(2)
        wire = workload_to_wire(graphs)
        restored = resolve_workload(wire)
        assert all(isinstance(g, Graph) for g in restored)
        assert [g.edges for g in restored] == [g.edges for g in graphs]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="workload spec"):
            resolve_workload("barabasi:3")

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            resolve_workload([])


class TestSearch:
    CONFIG = Config(k_min=2, k_max=2, steps=5, num_samples=4, seed=3)

    def test_returns_a_search_result(self):
        result = search("er:2", depths=1, config=self.CONFIG)
        assert isinstance(result, SearchResult)
        assert result.num_candidates == 4
        assert result.best_tokens

    def test_facade_matches_the_deep_api(self):
        """The facade is sugar, not a fork: identical inputs give
        identical results through either route."""
        facade = search("er:2:9", depths=1, config=self.CONFIG)
        deep = search_mixer(
            resolve_workload("er:2:9"), self.CONFIG.search_config(1)
        )
        assert facade.best_tokens == deep.best_tokens
        assert facade.best_energy == deep.best_energy

    def test_cache_dir_wiring(self, tmp_path):
        config = Config(**{**self.CONFIG.to_dict(), "cache_dir": str(tmp_path)})
        cold = search("er:2", depths=1, config=config)
        warm = search("er:2", depths=1, config=config)
        assert cold.config["cache_misses"] == 4
        assert warm.config["cache_hits"] == 4
        assert warm.best_energy == cold.best_energy

    def test_top_level_exports(self):
        import repro

        assert repro.search is search
        assert repro.Config is Config
        assert callable(repro.connect)
