"""Persistent result cache: fingerprints, hit/miss accounting, checkpoints."""

import json

import pytest

from repro.core.cache import (
    ResultCache,
    SweepCheckpoint,
    candidate_key,
    config_fingerprint,
    depth_fingerprint,
    workload_fingerprint,
)
from repro.core.evaluator import EvaluationConfig
from repro.core.results import CandidateEvaluation, DepthResult
from repro.graphs.generators import erdos_renyi_graph


@pytest.fixture
def graphs():
    return [erdos_renyi_graph(5, 0.6, seed=s, require_connected=True) for s in (3, 4)]


def make_evaluation(tokens=("rx",), p=1, ratio=0.9):
    return CandidateEvaluation(
        tokens=tuple(tokens),
        p=p,
        energy=3.5,
        ratio=ratio,
        per_graph_energy=(3.4, 3.6),
        per_graph_ratio=(ratio, ratio),
        nfev=17,
        seconds=0.25,
    )


class TestFingerprints:
    def test_workload_fingerprint_stable(self, graphs):
        assert workload_fingerprint(graphs) == workload_fingerprint(list(graphs))

    def test_workload_fingerprint_sees_content(self, graphs):
        other = [erdos_renyi_graph(5, 0.6, seed=9, require_connected=True)]
        assert workload_fingerprint(graphs) != workload_fingerprint(other)
        assert workload_fingerprint(graphs) != workload_fingerprint(graphs[:1])

    def test_config_fingerprint_sees_every_field(self):
        base = EvaluationConfig(max_steps=10)
        assert config_fingerprint(base) == config_fingerprint(EvaluationConfig(max_steps=10))
        changed = [
            EvaluationConfig(max_steps=11),
            EvaluationConfig(max_steps=10, optimizer="spsa"),
            EvaluationConfig(max_steps=10, seed=8),
            EvaluationConfig(max_steps=10, restarts=2),
            EvaluationConfig(max_steps=10, metric="best_sampled"),
            EvaluationConfig(max_steps=10, init_strategy="ramp"),
            EvaluationConfig(max_steps=10, engine="statevector"),
            EvaluationConfig(max_steps=10, array_backend="mock_gpu"),
        ]
        for config in changed:
            assert config_fingerprint(config) != config_fingerprint(base)

    def test_engine_is_part_of_the_runtime_payload_fingerprint(self):
        """Runtime job payloads are keyed by the config fingerprint, so a
        result trained on one engine can never be replayed as another's."""
        compiled = config_fingerprint(EvaluationConfig(engine="compiled"))
        dense = config_fingerprint(EvaluationConfig(engine="statevector"))
        assert compiled != dense

    def test_array_backend_is_part_of_the_fingerprint(self):
        """Like the engine: a result trained on one array backend can
        never be replayed as another's (results are pinned identical, but
        timings/accounting are not — and a buggy device backend must not
        poison numpy-keyed cache entries)."""
        numpy_fp = config_fingerprint(EvaluationConfig(array_backend="numpy"))
        mock_fp = config_fingerprint(EvaluationConfig(array_backend="mock_gpu"))
        assert numpy_fp != mock_fp

    def test_candidate_key_invalidation(self, graphs):
        wfp = workload_fingerprint(graphs)
        cfp = config_fingerprint(EvaluationConfig())
        base = candidate_key(wfp, ("rx", "ry"), 2, cfp)
        assert base == candidate_key(wfp, ("rx", "ry"), 2, cfp)
        assert base != candidate_key(wfp, ("ry", "rx"), 2, cfp)  # order matters
        assert base != candidate_key(wfp, ("rx", "ry"), 3, cfp)
        assert base != candidate_key("other", ("rx", "ry"), 2, cfp)
        assert base != candidate_key(wfp, ("rx", "ry"), 2, "other")

    def test_depth_fingerprint_sees_candidate_list(self):
        a = depth_fingerprint("w", "c", [("rx",), ("ry",)], 1)
        assert a == depth_fingerprint("w", "c", [("rx",), ("ry",)], 1)
        assert a != depth_fingerprint("w", "c", [("ry",), ("rx",)], 1)
        assert a != depth_fingerprint("w", "c", [("rx",)], 1)
        assert a != depth_fingerprint("w", "c", [("rx",), ("ry",)], 2)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            assert cache.get("k") is None
            assert (cache.hits, cache.misses) == (0, 1)
            cache.put("k", make_evaluation())
            roundtrip = cache.get("k")
            assert (cache.hits, cache.misses) == (1, 1)
        assert roundtrip == make_evaluation()

    def test_persists_across_reopen(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put("k", make_evaluation(tokens=("rx", "ry"), p=2))
        with ResultCache(tmp_path) as cache:
            assert len(cache) == 1
            assert "k" in cache
            restored = cache.get("k")
        assert restored.tokens == ("rx", "ry")
        assert restored.p == 2

    def test_put_overwrites(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put("k", make_evaluation(ratio=0.5))
            cache.put("k", make_evaluation(ratio=0.7))
            assert len(cache) == 1
            assert cache.get("k").ratio == 0.7

    def test_creates_cache_dir(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        with ResultCache(target):
            pass
        assert (target / "results.sqlite").exists()


class TestCommitBatching:
    def test_puts_buffer_until_flush_threshold(self, tmp_path):
        writer = ResultCache(tmp_path, flush_every=3)
        reader = ResultCache(tmp_path)  # separate connection: sees commits only
        writer.put("a", make_evaluation())
        writer.put("b", make_evaluation(("ry",)))
        assert reader.get("a") is None  # not committed yet...
        assert writer.get("a") == make_evaluation()  # ...but the writer sees it
        assert "a" in writer
        writer.put("c", make_evaluation(("rz",)))  # 3rd put commits the batch
        assert reader.get("a") is not None
        assert reader.get("c") is not None
        writer.close()
        reader.close()

    def test_close_flushes_pending(self, tmp_path):
        with ResultCache(tmp_path, flush_every=100) as cache:
            cache.put("k", make_evaluation())
        with ResultCache(tmp_path) as cache:
            assert cache.get("k") == make_evaluation()

    def test_explicit_flush(self, tmp_path):
        writer = ResultCache(tmp_path, flush_every=100)
        reader = ResultCache(tmp_path)
        writer.put("k", make_evaluation())
        writer.flush()
        assert reader.get("k") is not None
        writer.close()
        reader.close()

    def test_len_accounts_for_buffered(self, tmp_path):
        with ResultCache(tmp_path, flush_every=100) as cache:
            cache.put("k", make_evaluation())
            assert len(cache) == 1

    def test_invalid_flush_every(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            ResultCache(tmp_path, flush_every=0)


class TestSweepCheckpoint:
    def test_roundtrip(self, tmp_path):
        depth = DepthResult(1, (make_evaluation(), make_evaluation(("ry",))), 1.5)
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.save_depth("fp1", depth)

        reloaded = SweepCheckpoint(tmp_path)
        restored = reloaded.load_depth("fp1")
        assert restored.p == 1
        assert restored.seconds == 1.5
        assert restored.evaluations == depth.evaluations

    def test_unknown_key_misses(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.save_depth("fp1", DepthResult(1, (make_evaluation(),), 0.1))
        assert SweepCheckpoint(tmp_path).load_depth("other-sweep") is None

    def test_corrupt_file_ignored(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text("{not json")
        assert len(SweepCheckpoint(tmp_path)) == 0

    def test_foreign_format_ignored(self, tmp_path):
        (tmp_path / SweepCheckpoint.FILENAME).write_text(json.dumps({"format": "v999"}))
        assert len(SweepCheckpoint(tmp_path)) == 0

    def test_clear(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.save_depth("fp1", DepthResult(1, (make_evaluation(),), 0.1))
        checkpoint.clear()
        assert not checkpoint.path.exists()
        assert SweepCheckpoint(tmp_path).load_depth("fp1") is None
