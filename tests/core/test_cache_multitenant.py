"""Multi-tenant ResultCache: LRU bounds, pinning, claim/wait coordination."""

import threading

import pytest

from repro.core.cache import ResultCache
from repro.core.results import CandidateEvaluation


def make_evaluation(tokens=("rx",), p=1, ratio=0.9):
    return CandidateEvaluation(
        tokens=tuple(tokens),
        p=p,
        energy=3.5,
        ratio=ratio,
        per_graph_energy=(3.4, 3.6),
        per_graph_ratio=(ratio, ratio),
        nfev=17,
        seconds=0.25,
    )


def fill(cache, n, prefix="k"):
    for i in range(n):
        cache.put(f"{prefix}{i}", make_evaluation((f"g{i}",)))
    cache.flush()


class TestLRUEviction:
    def test_unbounded_by_default(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            fill(cache, 50)
            assert all(cache.get(f"k{i}") is not None for i in range(50))
            assert cache.evictions == 0

    def test_bounded_cache_evicts_oldest(self, tmp_path):
        with ResultCache(tmp_path, max_entries=3) as cache:
            fill(cache, 5)
            # the two oldest fell out, the three newest survive
            assert cache.get("k0") is None
            assert cache.get("k1") is None
            assert all(cache.get(f"k{i}") is not None for i in (2, 3, 4))
            assert cache.evictions == 2

    def test_get_refreshes_recency(self, tmp_path):
        with ResultCache(tmp_path, max_entries=2) as cache:
            fill(cache, 2)
            assert cache.get("k0") is not None  # k0 is now the hot entry
            cache.put("k2", make_evaluation(("new",)))
            cache.flush()
            assert cache.get("k0") is not None
            assert cache.get("k1") is None  # the cold one was evicted

    def test_pinned_keys_survive_eviction(self, tmp_path):
        with ResultCache(tmp_path, max_entries=2) as cache:
            fill(cache, 2)
            cache.pin("k0")
            fill(cache, 4, prefix="fresh")
            assert cache.get("k0") is not None
            cache.unpin("k0")
            fill(cache, 4, prefix="later")
            assert cache.get("k0") is None  # unpinned → evictable again

    def test_eviction_pressure_cannot_break_inflight_claims(self, tmp_path):
        """Eviction during the claim window never strands a waiter: the
        buffered put is protected, and the resolved row lands newest so
        the waiter's read wins the race with LRU pressure."""
        with ResultCache(tmp_path, max_entries=2, shared=True) as cache:
            fill(cache, 2)
            assert cache.claim("inflight")
            got = {}
            waiter = threading.Thread(
                target=lambda: got.update(result=cache.wait_for("inflight", timeout=10))
            )
            waiter.start()
            fill(cache, 4, prefix="pressure")  # churn while the claim is open
            cache.put("inflight", make_evaluation(("mid",)))
            waiter.join(timeout=10)
            assert not waiter.is_alive()
            assert got["result"] is not None
            assert got["result"].tokens == ("mid",)

    def test_bound_persists_across_reopen(self, tmp_path):
        with ResultCache(tmp_path, max_entries=3) as cache:
            fill(cache, 3)
        with ResultCache(tmp_path, max_entries=3) as cache:
            fill(cache, 2, prefix="new")
            survivors = sum(
                cache.get(k) is not None
                for k in ["k0", "k1", "k2", "new0", "new1"]
            )
            assert survivors == 3

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)


class TestClaims:
    def test_unshared_cache_every_tenant_owns_every_key(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            assert cache.claim("k") is True
            assert cache.claim("k") is True  # no coordination when unshared

    def test_shared_cache_first_claim_wins(self, tmp_path):
        with ResultCache(tmp_path, shared=True) as cache:
            assert cache.claim("k") is True
            assert cache.claim("k") is False

    def test_put_resolves_claim_and_wakes_waiter(self, tmp_path):
        with ResultCache(tmp_path, shared=True) as cache:
            assert cache.claim("k")
            got = {}

            def waiter():
                got["result"] = cache.wait_for("k", timeout=10)

            thread = threading.Thread(target=waiter)
            thread.start()
            cache.put("k", make_evaluation(("owned",)))
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert got["result"].tokens == ("owned",)

    def test_unclaim_without_put_releases_waiter_empty_handed(self, tmp_path):
        """Owner failed: waiters get None and fall back to evaluating."""
        with ResultCache(tmp_path, shared=True) as cache:
            assert cache.claim("k")
            got = {}

            def waiter():
                got["result"] = cache.wait_for("k", timeout=10)

            thread = threading.Thread(target=waiter)
            thread.start()
            cache.unclaim("k")
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert got["result"] is None

    def test_wait_for_unclaimed_key_is_a_plain_get(self, tmp_path):
        with ResultCache(tmp_path, shared=True) as cache:
            cache.put("k", make_evaluation())
            assert cache.wait_for("k", timeout=1) is not None
            assert cache.wait_for("missing", timeout=0.05) is None


class TestConcurrency:
    def test_parallel_tenants_share_work_without_duplicates(self, tmp_path):
        """N threads race over one key space; claim/wait coordination means
        each key is 'evaluated' exactly once."""
        evaluated = []
        evaluated_lock = threading.Lock()
        keys = [f"key{i}" for i in range(12)]

        with ResultCache(tmp_path, shared=True, flush_every=4) as cache:

            def tenant(seed):
                for key in keys[seed:] + keys[:seed]:  # staggered orders
                    if cache.get(key) is not None:
                        continue
                    if cache.claim(key):
                        with evaluated_lock:
                            evaluated.append(key)
                        cache.put(key, make_evaluation((key,)))
                    else:
                        cache.wait_for(key, timeout=10)

            threads = [threading.Thread(target=tenant, args=(s,)) for s in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not any(t.is_alive() for t in threads)
            cache.flush()
            assert sorted(evaluated) == sorted(set(evaluated))  # no key twice
            assert all(cache.get(k) is not None for k in keys)

    def test_counters_are_exposed(self, tmp_path):
        with ResultCache(tmp_path, max_entries=2) as cache:
            cache.put("a", make_evaluation())
            cache.flush()
            assert cache.get("a") is not None
            assert cache.get("b") is None
            fill(cache, 3, prefix="spill")
            assert cache.hits == 1
            assert cache.misses == 1
            assert cache.evictions > 0
