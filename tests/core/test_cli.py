"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.p_max == 2
        assert args.mode == "combinations"
        assert args.metric == "best_sampled"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])


class TestDrawCommand:
    def test_draws_circuit(self, capsys):
        assert main(["draw", "rx,ry", "--qubits", "3"]) == 0
        out = capsys.readouterr().out
        assert "RX(2*beta)" in out
        assert out.count("q") >= 3

    def test_empty_mixer_rejected(self):
        with pytest.raises(SystemExit):
            main(["draw", ",,"])


class TestEvaluateCommand:
    def test_evaluates_mixer(self, capsys):
        code = main([
            "evaluate", "rx", "--graphs", "1", "--steps", "8",
            "--metric", "energy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean ratio" in out

    def test_regular_dataset_option(self, capsys):
        code = main([
            "evaluate", "rx", "--dataset", "regular", "--graphs", "1",
            "--steps", "8",
        ])
        assert code == 0


class TestSearchCommand:
    def test_search_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--out", str(out_path),
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out
        saved = json.loads(out_path.read_text())
        assert saved["format"] == "repro-search-result-v1"

    def test_cache_dir_makes_rerun_all_hits(self, tmp_path, capsys):
        args = [
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "misses" in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "cache: 5 hits, 0 misses" in warm_out

    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --cache-dir"):
            main(["search", "--resume"])

    def test_resume_restores_depths(self, tmp_path, capsys):
        args = [
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "1 depths restored" in capsys.readouterr().out
