"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.p_max == 2
        assert args.mode == "combinations"
        assert args.metric == "best_sampled"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])


class TestDrawCommand:
    def test_draws_circuit(self, capsys):
        assert main(["draw", "rx,ry", "--qubits", "3"]) == 0
        out = capsys.readouterr().out
        assert "RX(2*beta)" in out
        assert out.count("q") >= 3

    def test_empty_mixer_rejected(self):
        with pytest.raises(SystemExit):
            main(["draw", ",,"])


class TestEvaluateCommand:
    def test_evaluates_mixer(self, capsys):
        code = main([
            "evaluate", "rx", "--graphs", "1", "--steps", "8",
            "--metric", "energy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean ratio" in out

    def test_regular_dataset_option(self, capsys):
        code = main([
            "evaluate", "rx", "--dataset", "regular", "--graphs", "1",
            "--steps", "8",
        ])
        assert code == 0

    def test_array_backend_option(self, capsys):
        code = main([
            "evaluate", "rx", "--graphs", "1", "--steps", "8",
            "--metric", "energy", "--array-backend", "mock_gpu",
        ])
        assert code == 0
        assert "mean ratio" in capsys.readouterr().out

    def test_unregistered_array_backend_rejected(self, capsys):
        """argparse choices come from the live registry, so a backend that
        did not register (e.g. "cupy" without CuPy installed, or a typo)
        is rejected before any work starts."""
        with pytest.raises(SystemExit) as excinfo:
            main([
                "evaluate", "rx", "--graphs", "1", "--steps", "8",
                "--array-backend", "not_a_backend",
            ])
        assert excinfo.value.code == 2
        assert "--array-backend" in capsys.readouterr().err


class TestSearchCommand:
    def test_search_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--out", str(out_path),
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out
        saved = json.loads(out_path.read_text())
        assert saved["format"] == "repro-search-result-v3"

    def test_cache_dir_makes_rerun_all_hits(self, tmp_path, capsys):
        args = [
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "misses" in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "cache: 5 hits, 0 misses" in warm_out

    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --cache-dir"):
            main(["search", "--resume"])

    def test_sharded_search(self, capsys):
        code = main([
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "shards: 2 (0 died, 0 candidates migrated)" in out

    def test_shard_index_processes_meet_in_cache(self, tmp_path, capsys):
        """Two --shard-index 'processes' then a merge run: the merge is
        pure cache hits."""
        base = [
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        for index in ("0", "1"):
            assert main(base + ["--shards", "2", "--shard-index", index]) == 0
            out = capsys.readouterr().out
            assert f"shard {index}/2: partial sweep" in out
        assert main(base) == 0
        assert "cache: 5 hits, 0 misses" in capsys.readouterr().out

    def test_shard_index_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--shard-index requires --cache-dir"):
            main(["search", "--shards", "2", "--shard-index", "0"])

    def test_shard_index_range_checked(self, tmp_path):
        with pytest.raises(SystemExit, match="--shard-index must be in"):
            main([
                "search", "--shards", "2", "--shard-index", "2",
                "--cache-dir", str(tmp_path),
            ])

    def test_invalid_shards_rejected(self):
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(["search", "--shards", "0"])

    def test_empty_shard_slice_exits_gracefully(self, tmp_path):
        """More shards than candidates: the empty shard process gets a
        configuration message, not a traceback."""
        with pytest.raises(SystemExit, match="shard 49/50 received no candidates"):
            main([
                "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
                "--k-min", "1", "--k-max", "1", "--metric", "energy",
                "--shards", "50", "--shard-index", "49",
                "--cache-dir", str(tmp_path),
            ])

    def test_resume_restores_depths(self, tmp_path, capsys):
        args = [
            "search", "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1", "--metric", "energy",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "1 depths restored" in capsys.readouterr().out


class TestWorkloadOptions:
    """--dataset families, --workload, --init-strategy."""

    def test_workload_choices_come_from_the_live_registry(self):
        from repro.workloads import available_workloads

        parser = build_parser()
        action = next(
            a
            for a in parser._subparsers._group_actions[0].choices["search"]._actions
            if a.dest == "workload"
        )
        assert tuple(action.choices) == available_workloads()

    @pytest.mark.parametrize("dataset", ["wmaxcut", "maxsat", "ising"])
    def test_search_runs_every_dataset_family(self, dataset, capsys):
        code = main([
            "search", "--dataset", dataset, "--graphs", "1", "--steps", "8",
            "--p-max", "1", "--k-min", "1", "--k-max", "1",
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out

    def test_explicit_matching_workload_accepted(self, capsys):
        code = main([
            "search", "--dataset", "ising", "--workload", "ising",
            "--graphs", "1", "--steps", "8", "--p-max", "1",
            "--k-min", "1", "--k-max", "1",
        ])
        assert code == 0

    def test_conflicting_workload_rejected(self):
        with pytest.raises(SystemExit, match="implies"):
            main([
                "search", "--dataset", "er", "--workload", "ising",
                "--graphs", "1", "--steps", "8", "--p-max", "1",
                "--k-min", "1", "--k-max", "1",
            ])

    def test_saved_result_records_the_workload(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "search", "--dataset", "maxsat", "--graphs", "1", "--steps", "8",
            "--p-max", "1", "--k-min", "1", "--k-max", "1",
            "--out", str(out_path),
        ])
        assert code == 0
        saved = json.loads(out_path.read_text())
        assert saved["config"]["workload"] == "maxsat"
        assert saved["depth_results"][0]["best_qasm"].startswith("OPENQASM 2.0;")

    def test_interp_init_strategy_runs(self, capsys):
        code = main([
            "search", "--graphs", "1", "--steps", "8", "--p-max", "2",
            "--k-min", "1", "--k-max", "1", "--init-strategy", "interp",
        ])
        assert code == 0
        assert "winner" in capsys.readouterr().out

    def test_evaluate_on_a_workload_dataset(self, capsys):
        code = main([
            "evaluate", "rx", "--dataset", "wmaxcut", "--graphs", "1",
            "--steps", "8", "--metric", "energy",
        ])
        assert code == 0
        assert "mean ratio" in capsys.readouterr().out
