"""Search-space constraints (§6's 'arbitrary constraints')."""

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.constraints import (
    ConstrainedPredictor,
    ConstraintSet,
    ForbiddenTokens,
    MaxGates,
    MaxMixerDepth,
    MinGates,
    NoAdjacentRepeats,
    PredicateConstraint,
    RequiredTokens,
    RequiresParameterizedGate,
)
from repro.core.predictor import ExhaustivePredictor, RandomPredictor


class TestIndividualConstraints:
    def test_max_gates(self):
        c = MaxGates(2)
        assert c(("rx", "ry"))
        assert not c(("rx", "ry", "rz"))

    def test_min_gates(self):
        c = MinGates(2)
        assert not c(("rx",))
        assert c(("rx", "ry"))

    def test_forbidden(self):
        c = ForbiddenTokens(("p", "rz"))
        assert c(("rx", "ry"))
        assert not c(("rx", "p"))

    def test_required(self):
        c = RequiredTokens(("rx",))
        assert c(("rx", "h"))
        assert not c(("ry", "h"))

    def test_requires_parameterized(self):
        c = RequiresParameterizedGate()
        assert c(("h", "rx"))
        assert not c(("h",))

    def test_no_adjacent_repeats(self):
        c = NoAdjacentRepeats()
        assert c(("rx", "ry", "rx"))
        assert not c(("rx", "rx"))

    def test_max_mixer_depth_counts_entanglers_double(self):
        c = MaxMixerDepth(3)
        assert c(("rx", "ry", "rz"))
        assert c(("rx", "cz_ring"))
        assert not c(("rx", "ry", "cz_ring"))

    def test_predicate_escape_hatch(self):
        c = PredicateConstraint(lambda t: t[0] == "rx", name="starts_rx")
        assert c(("rx", "h"))
        assert not c(("h", "rx"))


class TestConstraintSet:
    def test_conjunction(self):
        cs = ConstraintSet([MaxGates(2), RequiresParameterizedGate()])
        assert cs.satisfied(("rx", "h"))
        assert not cs.satisfied(("h",))
        assert not cs.satisfied(("rx", "ry", "rz"))

    def test_rejection_accounting(self):
        cs = ConstraintSet([MaxGates(1), RequiresParameterizedGate()])
        cs.satisfied(("rx", "ry"))  # rejected by max_gates
        cs.satisfied(("h",))  # rejected by requires_parameterized
        assert cs.rejections["max_gates"] == 1
        assert cs.rejections["requires_parameterized"] == 1

    def test_filter(self):
        space = enumerate_search_space(GateAlphabet(), 2, mode="combinations")
        cs = ConstraintSet([MinGates(2), RequiredTokens(("rx",))])
        admissible = cs.filter(space)
        assert all(len(t) == 2 and "rx" in t for t in admissible)
        assert len(admissible) == 4  # rx paired with each of ry, rz, h, p

    def test_violated_by(self):
        cs = ConstraintSet([MaxGates(1), ForbiddenTokens(("p",))])
        assert cs.violated_by(("rx", "p")) == ["max_gates", "forbidden_tokens"]
        assert cs.violated_by(("rx",)) == []

    def test_empty_set_admits_everything(self):
        assert ConstraintSet().satisfied(("anything",))


class TestConstrainedPredictor:
    def test_only_admissible_proposals(self):
        cs = ConstraintSet([RequiredTokens(("rx",))])
        inner = RandomPredictor(GateAlphabet(), 3, seed=0)
        predictor = ConstrainedPredictor(inner, cs)
        proposals = predictor.propose(20)
        assert proposals
        assert all("rx" in t for t in proposals)

    def test_exhausted_inner_stops(self):
        cs = ConstraintSet([ForbiddenTokens(("rx", "ry", "rz", "h", "p"))])
        inner = ExhaustivePredictor(GateAlphabet(), 1)
        predictor = ConstrainedPredictor(inner, cs, max_resamples=3)
        assert predictor.propose(5) == []  # everything forbidden

    def test_update_passthrough(self):
        from repro.core.predictor import EpsilonGreedyPredictor

        cs = ConstraintSet()
        inner = EpsilonGreedyPredictor(GateAlphabet(), 2, epsilon=0.0, seed=0)
        predictor = ConstrainedPredictor(inner, cs)
        predictor.update(("ry",), 1.0)
        assert inner._count.sum() > 0

    def test_name_reflects_inner(self):
        predictor = ConstrainedPredictor(
            RandomPredictor(GateAlphabet(), 2, seed=0), ConstraintSet()
        )
        assert predictor.name == "constrained(random)"


class TestSearchIntegration:
    def test_search_respects_constraints(self):
        from repro.core.evaluator import EvaluationConfig
        from repro.core.search import SearchConfig, search_mixer
        from repro.graphs.generators import erdos_renyi_graph

        graphs = [erdos_renyi_graph(5, 0.6, seed=1, require_connected=True)]
        cs = ConstraintSet([RequiredTokens(("ry",)), MaxGates(2)])
        config = SearchConfig(
            p_max=1, k_max=2, mode="combinations",
            evaluation=EvaluationConfig(max_steps=8, seed=0),
            constraints=cs,
        )
        result = search_mixer(graphs, config)
        for depth in result.depth_results:
            for evaluation in depth.evaluations:
                assert "ry" in evaluation.tokens
                assert len(evaluation.tokens) <= 2
