"""LSTM policy controller and its Predictor adapter."""

import numpy as np
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.controller import ControllerPredictor, PolicyController


@pytest.fixture
def alphabet():
    return GateAlphabet()


class TestSampling:
    def test_episode_token_range(self, alphabet):
        controller = PolicyController(alphabet, max_gates=4, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            ep = controller.sample_episode(rng)
            assert len(ep.actions) <= 4
            assert all(0 <= a < alphabet.size for a in ep.actions)

    def test_end_never_at_step_zero(self, alphabet):
        controller = PolicyController(alphabet, max_gates=3, seed=1)
        rng = np.random.default_rng(1)
        for _ in range(50):
            ep = controller.sample_episode(rng)
            assert len(ep.caches) >= 1
            first_action = ep.caches[0][-1]
            assert first_action != controller.end_index

    def test_allow_end_false_fixes_length(self, alphabet):
        controller = PolicyController(alphabet, max_gates=3, allow_end=False, seed=2)
        rng = np.random.default_rng(2)
        assert all(len(controller.sample_episode(rng).actions) == 3 for _ in range(20))

    def test_log_prob_matches_step_probs(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=3)
        ep = controller.sample_episode(np.random.default_rng(3))
        total = sum(float(np.log(cache[3][cache[-1]])) for cache in ep.caches)
        assert ep.log_prob == pytest.approx(total)

    def test_tokens_of(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=4)
        ep = controller.sample_episode(np.random.default_rng(4))
        tokens = controller.tokens_of(ep)
        assert all(t in alphabet.tokens for t in tokens)

    def test_greedy_is_deterministic(self, alphabet):
        controller = PolicyController(alphabet, max_gates=3, seed=5)
        assert controller.greedy_episode() == controller.greedy_episode()


class TestPolicyGradient:
    def test_update_increases_probability_of_rewarded_episode(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=6,
                                      learning_rate=0.1)
        rng = np.random.default_rng(6)
        ep = controller.sample_episode(rng)

        def episode_prob():
            h, c = controller.lstm.initial_state()
            prev = controller.start_index
            logp = 0.0
            for step, cache in enumerate(ep.caches):
                probs, h, c, _ = controller.step_probs(prev, h, c, step)
                action = cache[-1]
                logp += float(np.log(probs[action]))
                prev = action
            return logp

        before = episode_prob()
        controller.zero_grad()
        # positive advantage => scale negative (descend -adv*logp)
        controller.backprop_episode(ep, scale=-1.0, entropy_weight=0.0)
        controller.apply_gradients()
        assert episode_prob() > before

    def test_negative_advantage_decreases_probability(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=7,
                                      learning_rate=0.1)
        rng = np.random.default_rng(7)
        ep = controller.sample_episode(rng)
        before = ep.log_prob
        controller.zero_grad()
        controller.backprop_episode(ep, scale=+1.0)
        controller.apply_gradients()
        # re-evaluate same action sequence
        h, c = controller.lstm.initial_state()
        prev = controller.start_index
        logp = 0.0
        for step, cache in enumerate(ep.caches):
            probs, h, c, _ = controller.step_probs(prev, h, c, step)
            logp += float(np.log(probs[cache[-1]]))
            prev = cache[-1]
        assert logp < before


class TestControllerPredictor:
    def test_propose_returns_nonempty_sequences(self, alphabet):
        controller = PolicyController(alphabet, max_gates=3, seed=8)
        predictor = ControllerPredictor(controller, batch_size=4, seed=8)
        proposals = predictor.propose(10)
        assert all(len(p) >= 1 for p in proposals)

    def test_update_flushes_on_full_batch(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=9)
        predictor = ControllerPredictor(controller, batch_size=3, seed=9)
        proposals = predictor.propose(3)
        for tokens in proposals:
            predictor.update(tokens, 0.5)
        assert predictor.updates == 1

    def test_update_unmatched_tokens_ignored(self, alphabet):
        controller = PolicyController(alphabet, max_gates=2, seed=10)
        predictor = ControllerPredictor(controller, batch_size=2, seed=10)
        predictor.update(("rx", "never-proposed"), 1.0)
        assert predictor.updates == 0

    def test_closed_loop_improves_reward(self, alphabet):
        """Full Fig. 1 loop: reward = fraction of 'p' gates; the controller
        predictor should shift its proposals toward 'p'."""
        controller = PolicyController(
            alphabet, max_gates=3, allow_end=False, seed=11, learning_rate=0.05
        )
        predictor = ControllerPredictor(
            controller, batch_size=8, entropy_weight=0.003, seed=11
        )

        def reward(tokens):
            return sum(1.0 for t in tokens if t == "p") / len(tokens)

        early = []
        late = []
        for round_idx in range(40):
            proposals = predictor.propose(8)
            rewards = [reward(t) for t in proposals]
            for tokens, r in zip(proposals, rewards):
                predictor.update(tokens, r)
            (early if round_idx < 10 else late).extend(rewards)
        assert np.mean(late[-80:]) > np.mean(early) + 0.2
