"""Warm-started depth sweeps and noise-aware scoring."""
import pytest

from repro.core.depth_sweep import noisy_score, warm_started_sweep
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.simulators.noise import NoiseModel, depolarizing_channel


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(6, 0.5, seed=13, require_connected=True)


class TestWarmStartedSweep:
    def test_energy_monotone_in_depth(self, graph):
        points = warm_started_sweep(graph, ("rx",), 3, max_steps=60, seed=0)
        energies = [pt.energy for pt in points]
        assert all(b >= a - 1e-9 for a, b in zip(energies, energies[1:])), energies

    def test_params_length_matches_depth(self, graph):
        points = warm_started_sweep(graph, ("rx",), 3, max_steps=30)
        for pt in points:
            assert len(pt.params) == 2 * pt.p

    def test_beats_half_edges_at_every_depth(self, graph):
        points = warm_started_sweep(graph, ("rx", "ry"), 2, max_steps=60)
        for pt in points:
            assert pt.energy > graph.num_edges / 2

    def test_deterministic(self, graph):
        a = warm_started_sweep(graph, ("rx",), 2, max_steps=25, seed=4)
        b = warm_started_sweep(graph, ("rx",), 2, max_steps=25, seed=4)
        assert [pt.energy for pt in a] == [pt.energy for pt in b]

    def test_extra_restarts_never_hurt(self, graph):
        """The warm start seeds restart 0, so at the first depth a wider
        population (same restart-0 trajectory plus random ramps) can only
        improve or tie; deeper depths re-seed from their own optima and
        are only comparable within a sweep."""
        one = warm_started_sweep(graph, ("rx",), 1, max_steps=25, seed=4)
        wide = warm_started_sweep(
            graph, ("rx",), 1, max_steps=25, seed=4, restarts=3
        )
        assert wide[0].energy >= one[0].energy - 1e-9
        assert wide[0].nfev > one[0].nfev  # the population actually trained

    def test_batched_spsa_sweep_monotone(self, graph):
        points = warm_started_sweep(
            graph, ("rx",), 3, max_steps=40, seed=1,
            restarts=4, optimizer="spsa", batch_mode="batched",
        )
        energies = [pt.energy for pt in points]
        assert all(b >= a - 1e-9 for a, b in zip(energies, energies[1:]))

    def test_unknown_optimizer_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown sweep optimizer"):
            warm_started_sweep(graph, ("rx",), 1, optimizer="adam")


class TestNoisyScore:
    def test_noiseless_model_matches_clean_energy(self, graph):
        points = warm_started_sweep(graph, ("rx",), 1, max_steps=60)
        clean = noisy_score(
            graph, ("rx",), 1, points[0].params, NoiseModel()
        )
        assert clean == pytest.approx(points[0].energy, abs=1e-9)

    def test_depolarizing_pulls_toward_random_cut(self, graph):
        points = warm_started_sweep(graph, ("rx",), 1, max_steps=60)
        clean = points[0].energy
        noisy = noisy_score(
            graph, ("rx",), 1, points[0].params,
            NoiseModel(default=depolarizing_channel(0.05)),
        )
        random_cut = graph.num_edges / 2
        assert abs(noisy - random_cut) < abs(clean - random_cut)

    def test_longer_mixer_degrades_more(self):
        """The §3.2 'lower resource usage' argument: under equal per-gate
        depolarizing noise, a longer mixer loses a larger *fraction* of its
        excess energy over the random-cut anchor (more gates, more decay of
        the signal above the maximally-mixed baseline)."""
        g = cycle_graph(6)
        anchor = g.num_edges / 2  # random-cut / maximally-mixed energy
        noise = NoiseModel(default=depolarizing_channel(0.03))
        short = warm_started_sweep(g, ("rx",), 1, max_steps=80)[0]
        long = warm_started_sweep(g, ("rx", "ry", "rz", "p"), 1, max_steps=80)[0]

        def fractional_loss(tokens, point):
            noisy = noisy_score(g, tokens, 1, point.params, noise)
            excess = point.energy - anchor
            return (point.energy - noisy) / excess

        assert fractional_loss(("rx", "ry", "rz", "p"), long) > fractional_loss(
            ("rx",), short
        )
