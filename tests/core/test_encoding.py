"""Predictor <-> builder tensor encoding."""

import numpy as np
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.encoding import (
    PAD_INDEX,
    decode_encoding,
    encode_sequence,
    encoding_shape,
    is_valid_encoding,
    random_encoding,
)


@pytest.fixture
def alphabet():
    return GateAlphabet()


class TestEncode:
    def test_shape(self, alphabet):
        enc = encode_sequence(("rx", "ry"), alphabet, 4)
        assert enc.shape == encoding_shape(alphabet, 4) == (4, 6)

    def test_one_hot_rows(self, alphabet):
        enc = encode_sequence(("rx", "h"), alphabet, 3)
        np.testing.assert_array_equal(enc.sum(axis=1), np.ones(3))

    def test_padding_rows(self, alphabet):
        enc = encode_sequence(("rx",), alphabet, 3)
        assert enc[1, PAD_INDEX] == 1.0
        assert enc[2, PAD_INDEX] == 1.0

    def test_token_columns_offset_by_pad(self, alphabet):
        enc = encode_sequence(("rx",), alphabet, 1)
        assert enc[0, alphabet.index("rx") + 1] == 1.0

    def test_too_long_rejected(self, alphabet):
        with pytest.raises(ValueError, match="exceeds"):
            encode_sequence(("rx",) * 5, alphabet, 4)


class TestDecode:
    def test_roundtrip_all_lengths(self, alphabet):
        for tokens in [("rx",), ("ry", "p"), ("h", "rz", "rx"), ("p", "p", "p", "p")]:
            enc = encode_sequence(tokens, alphabet, 4)
            assert decode_encoding(enc, alphabet) == tokens

    def test_pad_acts_as_stop(self, alphabet):
        enc = np.zeros((3, 6))
        enc[0, 1] = 1.0  # rx
        enc[1, PAD_INDEX] = 1.0
        enc[2, 2] = 1.0  # ry after PAD: ignored
        assert decode_encoding(enc, alphabet) == ("rx",)

    def test_invalid_shape_rejected(self, alphabet):
        with pytest.raises(ValueError):
            decode_encoding(np.zeros((2, 3)), alphabet)

    def test_non_one_hot_rejected(self, alphabet):
        enc = np.zeros((1, 6))
        enc[0, 1] = enc[0, 2] = 1.0
        with pytest.raises(ValueError):
            decode_encoding(enc, alphabet)

    def test_fractional_values_rejected(self, alphabet):
        enc = np.zeros((1, 6))
        enc[0, 1] = 0.5
        enc[0, 2] = 0.5
        assert not is_valid_encoding(enc, alphabet)


class TestRandomEncoding:
    def test_always_valid(self, alphabet):
        rng = np.random.default_rng(0)
        for _ in range(20):
            enc = random_encoding(alphabet, 4, rng)
            assert is_valid_encoding(enc, alphabet)
            assert 1 <= len(decode_encoding(enc, alphabet)) <= 4

    def test_reproducible(self, alphabet):
        a = random_encoding(alphabet, 4, np.random.default_rng(5))
        b = random_encoding(alphabet, 4, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
