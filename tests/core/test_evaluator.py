"""Evaluator: trains candidates, returns rewards (§2.1 Evaluator module)."""

import numpy as np
import pytest

from repro.core.evaluator import EvaluationConfig, Evaluator, evaluate_candidate
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.qaoa.analytic import grid_search_p1


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(6, 0.5, seed=s, require_connected=True) for s in (1, 2)]


@pytest.fixture(scope="module")
def config():
    return EvaluationConfig(max_steps=25, seed=5)


class TestEvaluate:
    def test_result_fields(self, graphs, config):
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        assert result.tokens == ("rx",)
        assert result.p == 1
        assert len(result.per_graph_energy) == 2
        assert len(result.per_graph_ratio) == 2
        assert result.nfev > 0
        assert result.seconds > 0

    def test_mean_aggregation(self, graphs, config):
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        assert result.energy == pytest.approx(np.mean(result.per_graph_energy))
        assert result.ratio == pytest.approx(np.mean(result.per_graph_ratio))

    def test_ratio_bounds(self, graphs, config):
        result = Evaluator(graphs, config).evaluate(("rx", "ry"), 1)
        assert all(0.0 <= r <= 1.0 + 1e-9 for r in result.per_graph_ratio)

    def test_training_beats_random_parameters(self, graphs, config):
        """Trained p=1 energy must beat the untrained |+> energy (half the
        edges) on connected graphs."""
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        for graph, energy in zip(graphs, result.per_graph_energy):
            assert energy > graph.num_edges / 2

    def test_cobyla_200_reaches_analytic_optimum(self):
        """With the paper's budget the trained p=1 energy is near the grid
        optimum of the closed form."""
        g = cycle_graph(6)
        config = EvaluationConfig(max_steps=200, restarts=2, seed=0)
        result = Evaluator([g], config).evaluate(("rx",), 1)
        best, _, _ = grid_search_p1(g, resolution=48)
        assert result.energy >= best * 0.99

    def test_deterministic_given_seed(self, graphs, config):
        a = Evaluator(graphs, config).evaluate(("ry", "p"), 1)
        b = Evaluator(graphs, config).evaluate(("ry", "p"), 1)
        assert a.energy == b.energy

    def test_seed_changes_result_trajectory(self, graphs):
        a = Evaluator(graphs, EvaluationConfig(max_steps=8, seed=1)).evaluate(("rx",), 1)
        b = Evaluator(graphs, EvaluationConfig(max_steps=8, seed=2)).evaluate(("rx",), 1)
        assert a.nfev == b.nfev  # same budget, different inits
        # energies may coincide by luck but typically differ
        # (not asserted to avoid flakiness)

    def test_restarts_never_hurt(self, graphs):
        config_one = EvaluationConfig(max_steps=10, restarts=1, seed=3)
        one = Evaluator(graphs, config_one).evaluate(("rx",), 1)
        config_three = EvaluationConfig(max_steps=10, restarts=3, seed=3)
        three = Evaluator(graphs, config_three).evaluate(("rx",), 1)
        assert three.energy >= one.energy - 1e-12

    def test_empty_graphs_rejected(self, config):
        with pytest.raises(ValueError, match="at least one graph"):
            Evaluator([], config)


class TestCaching:
    def test_cache_hit_on_repeat(self, graphs, config):
        evaluator = Evaluator(graphs, config)
        first = evaluator.evaluate(("rx",), 1)
        second = evaluator.evaluate(("rx",), 1)
        assert evaluator.cache_hits == 1
        assert first is second

    def test_different_p_not_cached_together(self, graphs, config):
        evaluator = Evaluator(graphs, config)
        evaluator.evaluate(("rx",), 1)
        evaluator.evaluate(("rx",), 2)
        assert evaluator.cache_hits == 0

    def test_reward_uses_cache(self, graphs, config):
        evaluator = Evaluator(graphs, config)
        evaluator.evaluate(("rx",), 1)
        reward = evaluator.reward(("rx",), 1)
        assert evaluator.cache_hits == 1
        assert reward == evaluator.evaluate(("rx",), 1).ratio


class TestOptimizerChoices:
    @pytest.mark.parametrize("name", ["cobyla", "nelder_mead", "spsa"])
    def test_derivative_free_optimizers(self, graphs, name):
        config = EvaluationConfig(optimizer=name, max_steps=12, seed=4)
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        assert result.energy > 0

    def test_adam_parameter_shift(self, graphs):
        config = EvaluationConfig(optimizer="adam", max_steps=6, seed=4)
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        assert result.energy > 0

    def test_unknown_optimizer(self, graphs):
        config = EvaluationConfig(optimizer="magic", max_steps=5)
        with pytest.raises(ValueError, match="unknown optimizer"):
            Evaluator(graphs, config).evaluate(("rx",), 1)

    def test_compiled_engine_matches_statevector_training(self):
        """The default compiled engine and the dense oracle agree to 1e-10
        per energy call, so identically seeded trainings stay close (COBYLA
        can amplify last-bit differences across accept/reject steps)."""
        g = cycle_graph(5)
        fast = Evaluator([g], EvaluationConfig(max_steps=15, seed=6)).evaluate(("rx",), 1)
        dense = Evaluator(
            [g], EvaluationConfig(max_steps=15, seed=6, engine="statevector")
        ).evaluate(("rx",), 1)
        assert fast.energy == pytest.approx(dense.energy, abs=0.05)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EvaluationConfig(engine="abacus")

    def test_unknown_array_backend_rejected(self):
        """Only *registered* backends pass config validation — "cupy" on a
        box without CuPy fails here, at config build time, not mid-sweep
        inside a worker."""
        with pytest.raises(ValueError, match="unknown array backend"):
            EvaluationConfig(array_backend="abacus")

    def test_mock_gpu_backend_trains_identically(self):
        """The array backend changes where the math runs, never what it
        computes: an identically seeded training on the mock-GPU backend
        reproduces the numpy run bit for bit (same engine, same ops)."""
        g = cycle_graph(5)
        numpy_run = Evaluator(
            [g], EvaluationConfig(max_steps=15, seed=6)
        ).evaluate(("rx",), 1)
        mock_run = Evaluator(
            [g], EvaluationConfig(max_steps=15, seed=6, array_backend="mock_gpu")
        ).evaluate(("rx",), 1)
        assert mock_run.energy == numpy_run.energy
        assert mock_run.ratio == numpy_run.ratio
        assert mock_run.nfev == numpy_run.nfev

    def test_qtensor_engine_close_to_statevector(self):
        """The engines agree to ~1e-15 per evaluation; trained results only
        to ~1e-2 because COBYLA's accept/reject path amplifies last-bit
        differences across iterations."""
        g = cycle_graph(5)
        sv = Evaluator([g], EvaluationConfig(max_steps=15, seed=6)).evaluate(("rx",), 1)
        config = EvaluationConfig(max_steps=15, seed=6, engine="qtensor")
        tn = Evaluator([g], config).evaluate(("rx",), 1)
        assert tn.energy == pytest.approx(sv.energy, abs=0.05)


class TestBatchMode:
    def test_unknown_batch_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown batch mode"):
            EvaluationConfig(batch_mode="turbo")

    @pytest.mark.parametrize("name", ["spsa", "nelder_mead"])
    def test_batched_matches_serial_restarts(self, graphs, name):
        """The population path and the per-restart loop train the same
        trajectories (engine round-off aside): same minima, and — for
        SPSA, whose eval budget is value-independent — the same count.
        (Nelder-Mead's branches compare energies from two numerically
        different kernels, so a 1-ulp tie may flip its eval count.)"""
        kwargs = dict(optimizer=name, max_steps=14, restarts=3, seed=9)
        batched = Evaluator(
            graphs, EvaluationConfig(batch_mode="batched", **kwargs)
        ).evaluate(("rx",), 1)
        serial = Evaluator(
            graphs, EvaluationConfig(batch_mode="serial", **kwargs)
        ).evaluate(("rx",), 1)
        if name == "spsa":
            assert batched.nfev == serial.nfev
        assert batched.energy == pytest.approx(serial.energy, abs=1e-8)

    def test_adam_batched_restarts(self, graphs):
        config = EvaluationConfig(
            optimizer="adam", max_steps=6, restarts=2, seed=4, batch_mode="batched"
        )
        result = Evaluator(graphs, config).evaluate(("rx",), 1)
        assert result.energy > 0

    def test_auto_mode_default_unchanged_for_cobyla(self, graphs):
        """COBYLA has no batch path; auto must reproduce the historical
        serial restart loop exactly."""
        auto = Evaluator(
            graphs, EvaluationConfig(max_steps=12, restarts=2, seed=3)
        ).evaluate(("rx",), 1)
        serial = Evaluator(
            graphs,
            EvaluationConfig(max_steps=12, restarts=2, seed=3, batch_mode="serial"),
        ).evaluate(("rx",), 1)
        assert auto.energy == serial.energy
        assert auto.nfev == serial.nfev


class TestConfigFingerprint:
    def test_restarts_changes_cache_fingerprint(self):
        from repro.core.cache import config_fingerprint

        base = EvaluationConfig(max_steps=10, restarts=1)
        more = EvaluationConfig(max_steps=10, restarts=3)
        assert config_fingerprint(base) != config_fingerprint(more)

    def test_batch_mode_changes_cache_fingerprint(self):
        from repro.core.cache import config_fingerprint

        auto = EvaluationConfig(max_steps=10)
        serial = EvaluationConfig(max_steps=10, batch_mode="serial")
        assert config_fingerprint(auto) != config_fingerprint(serial)


class TestWorkerFunction:
    def test_stateless_entry_point_matches_evaluator(self, graphs, config):
        direct = Evaluator(graphs, config).evaluate(("h", "p"), 1)
        worker = evaluate_candidate(graphs, ("h", "p"), 1, config)
        assert worker.energy == direct.energy
        assert worker.tokens == direct.tokens
