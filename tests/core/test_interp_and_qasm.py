"""INTERP warm starts across depths, and the per-depth QASM export.

Both ride the v3 ``best_params`` field: the runtime harvests each depth's
trained parameters, hands them to the next depth's jobs as INTERP warm
starts (Zhou et al. 2020), and binds the depth winner's parameters into an
OpenQASM export. Warm-started evaluations must get warm-aware cache keys —
an interp run and a cold run of the same config are *different*
computations and may never alias in a shared cache.
"""

import pytest

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.core.runtime import RuntimeConfig, SearchRuntime
from repro.core.search import SearchConfig, search_mixer
from repro.graphs.generators import erdos_renyi_graph


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(6, 0.5, seed=s, require_connected=True) for s in (1, 2)]


def _config(init_strategy="uniform", steps=15):
    return SearchConfig(
        p_max=2,
        k_min=1,
        k_max=1,
        evaluation=EvaluationConfig(
            max_steps=steps, seed=5, init_strategy=init_strategy
        ),
    )


class TestInterpRuntime:
    def test_interp_sweep_runs_and_records_the_strategy(self, graphs):
        result = search_mixer(graphs, _config("interp"))
        assert result.config["init_strategy"] == "interp"
        assert len(result.depth_results) == 2
        assert all(d.evaluations for d in result.depth_results)

    def test_best_params_have_qaoa_shape(self, graphs):
        result = search_mixer(graphs, _config("interp"))
        for depth in result.depth_results:
            for evaluation in depth.evaluations:
                assert len(evaluation.best_params) == len(graphs)
                assert all(
                    len(row) == 2 * depth.p for row in evaluation.best_params
                )

    def test_interp_and_cold_runs_never_share_cache_keys(self, graphs, tmp_path):
        """The cache-poisoning guard: a cold rerun after an interp run must
        miss at p >= 2 (warm-aware keys), while p=1 — which interp cannot
        warm — is shared."""
        cache_dir = tmp_path / "cache"
        runtime = RuntimeConfig(cache_dir=str(cache_dir))
        interp = search_mixer(graphs, _config("interp"), runtime=runtime)
        cold = search_mixer(graphs, _config("uniform"), runtime=runtime)
        assert cold.config["cache_hits"] == 0  # uniform != interp config fp
        rerun = search_mixer(graphs, _config("interp"), runtime=runtime)
        assert rerun.config["cache_misses"] == 0
        assert rerun.best_ratio == interp.best_ratio

    def test_interp_rerun_is_deterministic(self, graphs):
        first = search_mixer(graphs, _config("interp"))
        second = search_mixer(graphs, _config("interp"))
        assert first.best_ratio == second.best_ratio
        assert [d.best.tokens for d in first.depth_results] == [
            d.best.tokens for d in second.depth_results
        ]

    def test_interp_rejects_shard_index_runs(self, graphs):
        with pytest.raises(ValueError, match="interp"):
            SearchRuntime(
                graphs,
                _config("interp"),
                runtime=RuntimeConfig(shards=2, shard_index=0, cache_dir="x"),
            )


class TestEvaluatorWarmStarts:
    def test_warm_start_changes_the_inmemory_cache_key(self, graphs):
        evaluator = Evaluator(
            graphs, EvaluationConfig(max_steps=12, seed=5, init_strategy="interp")
        )
        cold = evaluator.evaluate(("rx",), 2)
        warm_rows = tuple((0.3, -0.4) for _ in graphs)  # 2(p-1) at p=2
        warm = evaluator.evaluate(("rx",), 2, warm_start=warm_rows)
        # both results are cached under distinct keys
        assert evaluator.evaluate(("rx",), 2) is cold
        assert evaluator.evaluate(("rx",), 2, warm_start=warm_rows) is warm

    def test_warm_start_ignored_outside_interp(self, graphs):
        evaluator = Evaluator(graphs, EvaluationConfig(max_steps=12, seed=5))
        warm_rows = tuple((0.3, -0.4) for _ in graphs)
        cold = evaluator.evaluate(("rx",), 2)
        assert evaluator.evaluate(("rx",), 2, warm_start=warm_rows) is cold

    def test_malformed_warm_start_is_ignored(self, graphs):
        evaluator = Evaluator(
            graphs, EvaluationConfig(max_steps=12, seed=5, init_strategy="interp")
        )
        cold = evaluator.evaluate(("rx",), 2)
        # wrong row width (3 != 2(p-1)) -> treated as no warm start
        bad = tuple((0.1, 0.2, 0.3) for _ in graphs)
        assert evaluator.evaluate(("rx",), 2, warm_start=bad) is cold


class TestQasmExport:
    def test_every_depth_exports_its_winner(self, graphs):
        result = search_mixer(graphs, _config())
        for depth in result.depth_results:
            qasm = depth.best_qasm
            assert qasm is not None
            assert qasm.startswith("OPENQASM 2.0;")
            assert f"qreg q[{graphs[0].num_nodes}];" in qasm

    def test_qasm_binds_the_trained_parameters(self, graphs):
        result = search_mixer(graphs, _config())
        qasm = result.depth_results[0].best_qasm
        # a bound export has no symbolic parameters left
        assert "gamma" not in qasm
        assert "beta" not in qasm

    def test_qasm_rides_the_wire(self, graphs):
        from repro.core.results import SearchResult

        result = search_mixer(graphs, _config())
        restored = SearchResult.from_dict(result.to_dict())
        assert [d.best_qasm for d in restored.depth_results] == [
            d.best_qasm for d in result.depth_results
        ]

    @pytest.mark.parametrize("key", ["maxsat", "ising"])
    def test_qasm_exports_for_every_workload(self, key):
        from repro.workloads import get_workload

        workload_graphs = list(get_workload(key).dataset(1, dataset_seed=5))
        config = SearchConfig(
            p_max=1,
            k_min=1,
            k_max=1,
            evaluation=EvaluationConfig(max_steps=10, seed=5, workload=key),
        )
        result = search_mixer(workload_graphs, config)
        assert result.depth_results[0].best_qasm.startswith("OPENQASM 2.0;")
