"""Predictor strategies."""
import pytest

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.predictor import EpsilonGreedyPredictor, ExhaustivePredictor, RandomPredictor


@pytest.fixture
def alphabet():
    return GateAlphabet()


class TestRandomPredictor:
    def test_proposals_valid(self, alphabet):
        predictor = RandomPredictor(alphabet, k_max=3, seed=0)
        for tokens in predictor.propose(50):
            assert 1 <= len(tokens) <= 3
            assert all(t in alphabet.tokens for t in tokens)

    def test_reproducible(self, alphabet):
        a = RandomPredictor(alphabet, 3, seed=1).propose(10)
        b = RandomPredictor(alphabet, 3, seed=1).propose(10)
        assert a == b

    def test_never_exhausted(self, alphabet):
        predictor = RandomPredictor(alphabet, 2, seed=0)
        predictor.propose(100)
        assert not predictor.exhausted()

    def test_update_is_noop(self, alphabet):
        RandomPredictor(alphabet, 2, seed=0).update(("rx",), 1.0)

    def test_covers_space_eventually(self, alphabet):
        predictor = RandomPredictor(alphabet, 1, seed=2)
        seen = set(predictor.propose(200))
        assert seen == set(enumerate_search_space(alphabet, 1))


class TestExhaustivePredictor:
    def test_enumerates_whole_space_once(self, alphabet):
        predictor = ExhaustivePredictor(alphabet, 2)
        everything = predictor.propose(1000)
        assert len(everything) == 30
        assert predictor.exhausted()
        assert predictor.propose(10) == []

    def test_batching_preserves_order(self, alphabet):
        a = ExhaustivePredictor(alphabet, 2)
        batched = a.propose(7) + a.propose(7) + a.propose(100)
        b = ExhaustivePredictor(alphabet, 2)
        assert batched == b.propose(1000)

    def test_reset(self, alphabet):
        predictor = ExhaustivePredictor(alphabet, 1)
        predictor.propose(5)
        predictor.reset()
        assert not predictor.exhausted()
        assert len(predictor.propose(5)) == 5

    def test_space_size_property(self, alphabet):
        assert ExhaustivePredictor(alphabet, 2).space_size == 30

    def test_combinations_mode(self, alphabet):
        predictor = ExhaustivePredictor(alphabet, 2, mode="combinations")
        assert predictor.space_size == 15


class TestEpsilonGreedy:
    def test_pure_exploration_valid(self, alphabet):
        predictor = EpsilonGreedyPredictor(alphabet, 3, epsilon=1.0, seed=0)
        for tokens in predictor.propose(30):
            assert 1 <= len(tokens) <= 3

    def test_greedy_exploits_learned_token(self, alphabet):
        predictor = EpsilonGreedyPredictor(alphabet, 1, epsilon=0.0, seed=0)
        predictor.update(("ry",), 1.0)
        predictor.update(("rx",), 0.1)
        proposals = predictor.propose(10)
        assert all(p == ("ry",) for p in proposals)

    def test_learns_length_preference(self, alphabet):
        predictor = EpsilonGreedyPredictor(alphabet, 3, epsilon=0.0, seed=0)
        predictor.update(("rx", "ry"), 1.0)
        predictor.update(("rx",), 0.0)
        assert all(len(p) == 2 for p in predictor.propose(10))

    def test_epsilon_validated(self, alphabet):
        with pytest.raises(ValueError):
            EpsilonGreedyPredictor(alphabet, 2, epsilon=1.5)

    def test_update_ignores_overlong_sequences(self, alphabet):
        predictor = EpsilonGreedyPredictor(alphabet, 2, seed=0)
        predictor.update(("rx",) * 5, 1.0)  # silently ignored

    def test_positional_learning(self, alphabet):
        """Different tokens can win at different positions."""
        predictor = EpsilonGreedyPredictor(alphabet, 2, epsilon=0.0, seed=0)
        predictor.update(("rx", "p"), 1.0)
        predictor.update(("p", "rx"), 0.2)
        proposal = predictor.propose(1)[0]
        assert proposal == ("rx", "p")
