"""Contract tests every registered predictor must satisfy.

``PREDICTORS`` is the registry the search front-ends instantiate from;
anything registered there is driven through the same protocol: propose
token tuples, accept rewards, report exhaustion. These tests run each
factory against the invariants the runtime relies on — so a new strategy
(the surrogate wrapper being the latest) cannot silently propose tokens
outside the alphabet, sequences beyond ``k_max``, or diverge between
identically-seeded runs.
"""

import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.predictor import PREDICTORS, Predictor, make_predictor

ALPHABET = GateAlphabet(("rx", "ry", "rz", "h"))
K_MAX = 3

pytestmark = pytest.mark.parametrize("name", sorted(PREDICTORS))


def build(name, seed=7):
    return make_predictor(name, ALPHABET, K_MAX, seed=seed)


def drive(predictor, rounds=4, num=8):
    """Propose/update loop; returns every proposal seen, in order."""
    seen = []
    for round_index in range(rounds):
        if predictor.exhausted():
            break
        proposals = predictor.propose(num)
        seen.extend(proposals)
        for tokens in proposals:
            # a deterministic fake reward keeps learners' updates stable
            predictor.update(tokens, 1.0 / (len(tokens) + round_index + 1))
    return seen


def test_factory_builds_a_predictor(name):
    predictor = build(name)
    assert isinstance(predictor, Predictor)
    assert predictor.name == name


def test_proposals_are_token_tuples_within_bounds(name):
    for tokens in drive(build(name)):
        assert isinstance(tokens, tuple)
        assert 1 <= len(tokens) <= K_MAX, f"{name} proposed length {len(tokens)}"
        for token in tokens:
            assert token in ALPHABET.tokens, (
                f"{name} proposed {token!r} outside the alphabet"
            )


def test_propose_never_exceeds_request(name):
    predictor = build(name)
    for _ in range(4):
        if predictor.exhausted():
            break
        proposals = predictor.propose(6)
        assert len(proposals) <= 6


def test_seeded_determinism(name):
    assert drive(build(name, seed=13)) == drive(build(name, seed=13))


def test_update_accepts_any_proposed_tokens(name):
    predictor = build(name)
    if predictor.exhausted():
        pytest.skip("nothing to propose")
    for tokens in predictor.propose(5):
        predictor.update(tokens, 0.5)  # must not raise


def test_exhausted_is_boolean_and_stable_under_queries(name):
    predictor = build(name)
    first = predictor.exhausted()
    assert isinstance(first, bool)
    assert predictor.exhausted() == first  # querying must not mutate


def test_exhaustive_semantics(name):
    """Predictors that report exhaustion stop producing; the others keep
    proposing indefinitely."""
    predictor = build(name)
    for _ in range(200):
        if predictor.exhausted():
            break
        assert predictor.propose(16)
    if predictor.exhausted():
        # once exhausted, the whole space was emitted at most once each
        # (the exhaustive enumerator's contract)
        fresh = build(name)
        seen = []
        while not fresh.exhausted():
            seen.extend(fresh.propose(16))
        assert len(seen) == len(set(seen))
