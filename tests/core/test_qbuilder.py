"""QBuilder: encoded candidates -> circuits."""

import numpy as np
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.encoding import encode_sequence
from repro.core.qbuilder import QBuilder
from repro.graphs.generators import cycle_graph


@pytest.fixture
def builder():
    return QBuilder()


@pytest.fixture
def graph():
    return cycle_graph(5)


class TestBuildMixer:
    def test_mixer_spans_graph_nodes(self, builder, graph):
        mixer = builder.build_mixer(graph, ("rx", "ry"))
        assert mixer.num_qubits == graph.num_nodes
        assert mixer.count_ops() == {"rx": 5, "ry": 5}

    def test_shared_fresh_beta(self, builder, graph):
        mixer = builder.build_mixer(graph, ("rx", "ry"))
        assert len(mixer.parameters) == 1
        assert next(iter(mixer.parameters)).name == "beta"

    def test_empty_sequence_rejected(self, builder, graph):
        with pytest.raises(ValueError, match="empty"):
            builder.build_mixer(graph, ())

    def test_foreign_token_rejected(self, builder, graph):
        with pytest.raises(KeyError):
            builder.build_mixer(graph, ("rx", "cx"))


class TestBuildQaoa:
    def test_full_ansatz(self, builder, graph):
        ansatz = builder.build_qaoa(graph, ("rx",), p=2)
        assert ansatz.p == 2
        assert ansatz.num_parameters == 4
        assert ansatz.graph == graph

    def test_initial_hadamard_toggle(self, builder, graph):
        with_h = builder.build_qaoa(graph, ("rx",), 1)
        without = builder.build_qaoa(graph, ("rx",), 1, initial_hadamard=False)
        assert "h" in with_h.circuit.count_ops()
        assert "h" not in without.circuit.count_ops()


class TestFromEncoding:
    def test_decode_and_build(self, builder, graph):
        enc = encode_sequence(("ry", "p"), GateAlphabet(), 4)
        ansatz = builder.from_encoding(enc, graph, p=1)
        assert ansatz.mixer_tokens == ("ry", "p")

    def test_matches_direct_build(self, builder, graph):
        enc = encode_sequence(("rx", "ry"), GateAlphabet(), 4)
        via_encoding = builder.from_encoding(enc, graph, p=1)
        direct = builder.build_qaoa(graph, ("rx", "ry"), 1)
        assert via_encoding.circuit.count_ops() == direct.circuit.count_ops()

    def test_invalid_encoding_rejected(self, builder, graph):
        with pytest.raises(ValueError):
            builder.from_encoding(np.ones((4, 6)), graph, p=1)

    def test_custom_alphabet(self, graph):
        alphabet = GateAlphabet(("ry", "h"))
        builder = QBuilder(alphabet)
        enc = encode_sequence(("h", "ry"), alphabet, 2)
        ansatz = builder.from_encoding(enc, graph, p=1)
        assert ansatz.mixer_tokens == ("h", "ry")
