"""Result records and persistence."""

import pytest

from repro.core.results import CandidateEvaluation, DepthResult, SearchResult


def _eval(tokens, p, ratio, energy=1.0):
    return CandidateEvaluation(
        tokens=tuple(tokens), p=p, energy=energy, ratio=ratio,
        per_graph_energy=(energy,), per_graph_ratio=(ratio,), nfev=10, seconds=0.1,
    )


class TestCandidateEvaluation:
    def test_reward_is_ratio(self):
        assert _eval(("rx",), 1, 0.9).reward == 0.9

    def test_frozen(self):
        e = _eval(("rx",), 1, 0.9)
        with pytest.raises(AttributeError):
            e.ratio = 0.5


class TestDepthResult:
    def test_best_by_reward(self):
        d = DepthResult(1, (_eval(("rx",), 1, 0.8), _eval(("ry",), 1, 0.95)))
        assert d.best.tokens == ("ry",)

    def test_ranked_descending(self):
        d = DepthResult(1, (_eval(("rx",), 1, 0.8), _eval(("ry",), 1, 0.95), _eval(("p",), 1, 0.5)))
        ranked = d.ranked()
        assert [e.tokens for e in ranked] == [("ry",), ("rx",), ("p",)]

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            DepthResult(1, ()).best


class TestSearchResultPersistence:
    def _result(self):
        return SearchResult(
            best_tokens=("rx", "ry"),
            best_p=1,
            best_energy=6.5,
            best_ratio=0.97,
            depth_results=[
                DepthResult(1, (_eval(("rx", "ry"), 1, 0.97, 6.5), _eval(("h",), 1, 0.6))),
                DepthResult(2, (_eval(("rx",), 2, 0.9),), seconds=1.5),
            ],
            total_seconds=3.0,
            config={"p_max": 2},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "result.json"
        original = self._result()
        original.save(path)
        loaded = SearchResult.load(path)
        assert loaded.best_tokens == original.best_tokens
        assert loaded.best_ratio == original.best_ratio
        assert len(loaded.depth_results) == 2
        assert loaded.depth_results[0].best.tokens == ("rx", "ry")
        assert loaded.depth_results[1].seconds == 1.5
        assert loaded.config == {"p_max": 2}

    def test_num_candidates(self):
        assert self._result().num_candidates == 3

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="format"):
            SearchResult.load(path)


class TestWireFormat:
    """v3 is symmetric and versioned; v1/v2 files are still accepted."""

    def _result(self):
        return TestSearchResultPersistence._result(self)

    def test_to_dict_tags_v3(self):
        assert self._result().to_dict()["format"] == "repro-search-result-v3"

    def test_dict_roundtrip_is_lossless(self):
        original = self._result()
        restored = SearchResult.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.best_tokens == original.best_tokens
        assert restored.depth_results[0].evaluations == (
            original.depth_results[0].evaluations
        )

    def test_candidate_evaluation_roundtrip(self):
        e = _eval(("rx", "ry"), 2, 0.88, 5.5)
        assert CandidateEvaluation.from_dict(e.to_dict()) == e

    def test_depth_result_roundtrip(self):
        d = DepthResult(2, (_eval(("rx",), 2, 0.9),), seconds=1.5)
        restored = DepthResult.from_dict(d.to_dict())
        assert restored.p == 2
        assert restored.seconds == 1.5
        assert restored.evaluations == d.evaluations

    @pytest.mark.parametrize(
        "tag", ["repro-search-result-v1", "repro-search-result-v2"]
    )
    def test_older_payloads_still_load(self, tmp_path, tag):
        """Files written before the v3 tag keep loading (the v3 fields —
        best_params, best_qasm, workload in config — all default when
        absent)."""
        payload = self._result().to_dict()
        payload["format"] = tag
        for depth in payload["depth_results"]:
            depth.pop("best_qasm", None)
            for evaluation in depth["evaluations"]:
                evaluation.pop("best_params", None)
        path = tmp_path / "old.json"
        import json

        path.write_text(json.dumps(payload))
        loaded = SearchResult.load(path)
        assert loaded.best_tokens == ("rx", "ry")
        assert loaded.num_candidates == 3
        assert loaded.depth_results[0].best_qasm is None
        assert loaded.depth_results[0].evaluations[0].best_params == ()

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="bad.json"):
            SearchResult.load(path)
