"""Result records and persistence."""

import pytest

from repro.core.results import CandidateEvaluation, DepthResult, SearchResult


def _eval(tokens, p, ratio, energy=1.0):
    return CandidateEvaluation(
        tokens=tuple(tokens), p=p, energy=energy, ratio=ratio,
        per_graph_energy=(energy,), per_graph_ratio=(ratio,), nfev=10, seconds=0.1,
    )


class TestCandidateEvaluation:
    def test_reward_is_ratio(self):
        assert _eval(("rx",), 1, 0.9).reward == 0.9

    def test_frozen(self):
        e = _eval(("rx",), 1, 0.9)
        with pytest.raises(AttributeError):
            e.ratio = 0.5


class TestDepthResult:
    def test_best_by_reward(self):
        d = DepthResult(1, (_eval(("rx",), 1, 0.8), _eval(("ry",), 1, 0.95)))
        assert d.best.tokens == ("ry",)

    def test_ranked_descending(self):
        d = DepthResult(1, (_eval(("rx",), 1, 0.8), _eval(("ry",), 1, 0.95), _eval(("p",), 1, 0.5)))
        ranked = d.ranked()
        assert [e.tokens for e in ranked] == [("ry",), ("rx",), ("p",)]

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            DepthResult(1, ()).best


class TestSearchResultPersistence:
    def _result(self):
        return SearchResult(
            best_tokens=("rx", "ry"),
            best_p=1,
            best_energy=6.5,
            best_ratio=0.97,
            depth_results=[
                DepthResult(1, (_eval(("rx", "ry"), 1, 0.97, 6.5), _eval(("h",), 1, 0.6))),
                DepthResult(2, (_eval(("rx",), 2, 0.9),), seconds=1.5),
            ],
            total_seconds=3.0,
            config={"p_max": 2},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "result.json"
        original = self._result()
        original.save(path)
        loaded = SearchResult.load(path)
        assert loaded.best_tokens == original.best_tokens
        assert loaded.best_ratio == original.best_ratio
        assert len(loaded.depth_results) == 2
        assert loaded.depth_results[0].best.tokens == ("rx", "ry")
        assert loaded.depth_results[1].seconds == 1.5
        assert loaded.config == {"p_max": 2}

    def test_num_candidates(self):
        assert self._result().num_candidates == 3

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="format"):
            SearchResult.load(path)
