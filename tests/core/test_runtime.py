"""SearchRuntime: warm-cache reuse, checkpoint/resume, fault tolerance."""

from dataclasses import replace

import pytest

from repro.core.evaluator import EvaluationConfig
from repro.core.predictor import Predictor
from repro.core.runtime import RuntimeConfig, SearchRuntime
from repro.core.search import SearchConfig, search_mixer
from repro.graphs.generators import erdos_renyi_graph
from repro.parallel.executor import SerialExecutor, ThreadExecutor


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(5, 0.6, seed=s, require_connected=True) for s in (3, 4)]


@pytest.fixture(scope="module")
def tiny_config():
    return SearchConfig(
        p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
    )


def evaluation_payload(result):
    """Everything evaluation-defining in a SearchResult (timings excluded)."""
    return (
        result.best_tokens,
        result.best_p,
        result.best_energy,
        result.best_ratio,
        [
            [replace(e, seconds=0.0) for e in d.evaluations]
            for d in result.depth_results
        ],
    )


class CountingExecutor(SerialExecutor):
    """Serial executor that records every job submitted to it."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, *args):
        self.submitted.append(args)
        return super().submit(fn, *args)


class FailAtExecutor(SerialExecutor):
    """Simulates a hard kill: dies on the Nth submitted job."""

    def __init__(self, fail_at):
        self.fail_at = fail_at
        self.count = 0

    def submit(self, fn, *args):
        self.count += 1
        if self.count == self.fail_at:
            raise KeyboardInterrupt("simulated kill")
        return super().submit(fn, *args)


class RecordingPredictor(Predictor):
    name = "recording"

    def __init__(self):
        self.updates = []

    def propose(self, num):  # pragma: no cover - runtime never proposes
        raise NotImplementedError

    def update(self, tokens, reward):
        self.updates.append((tuple(tokens), reward))


class TestWarmCache:
    def test_warm_run_is_all_hits_and_identical(self, graphs, tiny_config, tmp_path):
        runtime = RuntimeConfig(cache_dir=str(tmp_path / "cache"))
        cold = search_mixer(graphs, tiny_config, runtime=runtime)
        warm = search_mixer(graphs, tiny_config, runtime=runtime)

        # Acceptance: a repeated run with a warm cache trains nothing —
        # every candidate is a cache hit.
        assert warm.config["cache_hits"] == warm.num_candidates
        assert warm.config["cache_misses"] == 0
        assert warm.config["jobs_submitted"] == 0
        assert evaluation_payload(warm) == evaluation_payload(cold)

    def test_cold_cache_counts_misses(self, graphs, tiny_config, tmp_path):
        runtime = RuntimeConfig(cache_dir=str(tmp_path / "cache"))
        cold = search_mixer(graphs, tiny_config, runtime=runtime)
        assert cold.config["cache_hits"] == 0
        assert cold.config["cache_misses"] == cold.num_candidates

    def test_cached_matches_uncached(self, graphs, tiny_config, tmp_path):
        plain = search_mixer(graphs, tiny_config)
        cached = search_mixer(
            graphs, tiny_config, runtime=RuntimeConfig(cache_dir=str(tmp_path))
        )
        assert evaluation_payload(cached) == evaluation_payload(plain)

    def test_config_change_invalidates(self, graphs, tiny_config, tmp_path):
        runtime = RuntimeConfig(cache_dir=str(tmp_path))
        search_mixer(graphs, tiny_config, runtime=runtime)
        changed = SearchConfig(
            p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=11, seed=1)
        )
        rerun = search_mixer(graphs, changed, runtime=runtime)
        assert rerun.config["cache_hits"] == 0
        assert rerun.config["cache_misses"] == rerun.num_candidates

    def test_workload_change_invalidates(self, graphs, tiny_config, tmp_path):
        runtime = RuntimeConfig(cache_dir=str(tmp_path))
        search_mixer(graphs, tiny_config, runtime=runtime)
        other = [erdos_renyi_graph(5, 0.6, seed=9, require_connected=True)]
        rerun = search_mixer(other, tiny_config, runtime=runtime)
        assert rerun.config["cache_hits"] == 0

    def test_cache_shared_across_depths(self, graphs, tmp_path):
        """p is part of the key, so depths never collide — but an RL-style
        repeat proposal within one depth is served from cache."""
        config = SearchConfig(
            p_max=1, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
        )
        with SearchRuntime(
            graphs, config, runtime=RuntimeConfig(cache_dir=str(tmp_path))
        ) as runtime:
            result = runtime.run([[("rx",), ("ry",), ("rx",)]])
        assert runtime.cache_hits == 1  # third candidate repeats the first
        assert runtime.cache_misses == 2
        assert len(result.depth_results[0].evaluations) == 3


class TestCheckpointResume:
    def test_killed_after_depth1_resumes_without_reevaluating(
        self, graphs, tiny_config, tmp_path
    ):
        cache_dir = str(tmp_path / "ckpt")
        reference = search_mixer(graphs, tiny_config)
        num_per_depth = reference.num_candidates // 2  # k_max=1: 5 per depth

        # First attempt dies on the first depth-2 evaluation (after the
        # depth-1 checkpoint was written).
        failing = FailAtExecutor(fail_at=num_per_depth + 1)
        with pytest.raises(KeyboardInterrupt):
            search_mixer(
                graphs,
                tiny_config,
                executor=failing,
                runtime=RuntimeConfig(cache_dir=cache_dir),
            )

        counting = CountingExecutor()
        resumed = search_mixer(
            graphs,
            tiny_config,
            executor=counting,
            runtime=RuntimeConfig(cache_dir=cache_dir, resume=True),
        )
        # Depth 1 came from the checkpoint: not a single depth-1 candidate
        # was re-submitted, and no cache lookups were needed for it.
        assert resumed.config["restored_depths"] == 1
        assert len(counting.submitted) == num_per_depth
        assert all(args[2] == 2 for args in counting.submitted)  # job p == 2
        assert evaluation_payload(resumed) == evaluation_payload(reference)

    def test_resume_of_completed_run_restores_every_depth(
        self, graphs, tiny_config, tmp_path
    ):
        runtime_cfg = RuntimeConfig(cache_dir=str(tmp_path))
        first = search_mixer(graphs, tiny_config, runtime=runtime_cfg)
        counting = CountingExecutor()
        resumed = search_mixer(
            graphs,
            tiny_config,
            executor=counting,
            runtime=RuntimeConfig(cache_dir=str(tmp_path), resume=True),
        )
        assert resumed.config["restored_depths"] == tiny_config.p_max
        assert counting.submitted == []
        assert resumed.config["cache_hits"] == 0  # checkpoint, not cache
        assert evaluation_payload(resumed) == evaluation_payload(first)

    def test_checkpoint_ignored_when_config_changes(self, graphs, tiny_config, tmp_path):
        runtime_cfg = RuntimeConfig(cache_dir=str(tmp_path))
        search_mixer(graphs, tiny_config, runtime=runtime_cfg)
        changed = SearchConfig(
            p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=12, seed=1)
        )
        rerun = search_mixer(
            graphs, changed, runtime=RuntimeConfig(cache_dir=str(tmp_path), resume=True)
        )
        assert rerun.config["restored_depths"] == 0

    def test_resume_replays_rewards_to_predictor(self, graphs, tmp_path):
        config = SearchConfig(
            p_max=1, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
        )
        candidates = [[("rx",), ("ry",)]]
        with SearchRuntime(
            graphs, config, runtime=RuntimeConfig(cache_dir=str(tmp_path))
        ) as runtime:
            first = RecordingPredictor()
            runtime.run(candidates, predictor=first)

        with SearchRuntime(
            graphs, config, runtime=RuntimeConfig(cache_dir=str(tmp_path), resume=True)
        ) as runtime:
            replayed = RecordingPredictor()
            runtime.run(candidates, predictor=replayed)
        assert replayed.updates == first.updates


class TestPartialDepthResume:
    def test_mid_depth_kill_resubmits_only_unfinished(self, graphs, tmp_path):
        """Acceptance: kill a sweep partway through a wide depth; resume
        re-submits only the candidates that never reached the cache — not
        the whole depth — and the final result matches an uninterrupted
        run."""
        config = SearchConfig(
            p_max=1, k_min=1, k_max=2, mode="combinations",
            evaluation=EvaluationConfig(max_steps=10, seed=1),
        )
        cache_dir = str(tmp_path / "partial")
        reference = search_mixer(graphs, config)
        width = reference.num_candidates
        assert width >= 8  # a "wide" depth: the kill lands mid-depth

        with pytest.raises(KeyboardInterrupt):
            search_mixer(
                graphs,
                config,
                executor=FailAtExecutor(fail_at=8),
                runtime=RuntimeConfig(cache_dir=cache_dir, cache_flush_every=1),
            )

        # The incremental per-evaluation persistence is the partial-depth
        # checkpoint: some (not all) of the depth survived the kill.
        from repro.core.cache import ResultCache

        with ResultCache(cache_dir) as cache:
            persisted = len(cache)
        assert 0 < persisted < width

        counting = CountingExecutor()
        resumed = search_mixer(
            graphs,
            config,
            executor=counting,
            runtime=RuntimeConfig(cache_dir=cache_dir, resume=True),
        )
        assert resumed.config["restored_depths"] == 0  # depth never finished
        assert resumed.config["jobs_submitted"] == width - persisted
        assert resumed.config["cache_hits"] == persisted
        assert len(counting.submitted) == width - persisted
        assert evaluation_payload(resumed) == evaluation_payload(reference)

    def test_flush_batching_bounds_loss_to_unflushed_tail(self, graphs, tmp_path):
        """With batched commits (flush_every=4), a kill can only lose the
        evaluations after the last flush boundary."""
        config = SearchConfig(
            p_max=1, k_min=1, k_max=2, mode="combinations",
            evaluation=EvaluationConfig(max_steps=10, seed=1),
        )
        cache_dir = str(tmp_path / "batched")
        with pytest.raises(KeyboardInterrupt):
            search_mixer(
                graphs,
                config,
                executor=FailAtExecutor(fail_at=11),
                runtime=RuntimeConfig(cache_dir=cache_dir, cache_flush_every=4),
            )
        from repro.core.cache import ResultCache

        with ResultCache(cache_dir) as cache:
            persisted = len(cache)
        # Full flush batches survived; only the tail since the last
        # commit was lost.
        assert persisted >= 4
        assert persisted % 4 == 0


class TestFaultTolerance:
    def test_search_survives_transient_worker_faults(self, graphs, tiny_config):
        class FlakySubmitExecutor(SerialExecutor):
            """Every third submit fails once before the retry succeeds."""

            def __init__(self):
                self.count = 0

            def submit(self, fn, *args):
                self.count += 1
                if self.count % 3 == 0:
                    future = super().submit(fn, *args)
                    failed = type(future)()
                    failed.set_exception(RuntimeError("transient worker fault"))
                    return failed
                return super().submit(fn, *args)

        reference = search_mixer(graphs, tiny_config)
        flaky = search_mixer(
            graphs,
            tiny_config,
            executor=FlakySubmitExecutor(),
            runtime=RuntimeConfig(max_retries=2),
        )
        assert flaky.config["jobs_retried"] > 0
        assert evaluation_payload(flaky) == evaluation_payload(reference)

    def test_threaded_runtime_matches_serial(self, graphs, tiny_config, tmp_path):
        serial = search_mixer(graphs, tiny_config)
        with ThreadExecutor(2) as executor:
            threaded = search_mixer(
                graphs,
                tiny_config,
                executor=executor,
                runtime=RuntimeConfig(cache_dir=str(tmp_path)),
            )
        assert evaluation_payload(threaded) == evaluation_payload(serial)


class TestRuntimeValidation:
    def test_needs_graphs(self, tiny_config):
        with pytest.raises(ValueError, match="at least one graph"):
            SearchRuntime([], tiny_config)

    def test_no_cache_dir_disables_persistence(self, graphs, tiny_config):
        with SearchRuntime(graphs, tiny_config) as runtime:
            assert runtime.cache is None
            assert runtime.checkpoint is None
            result = runtime.run([[("rx",)]])
        assert result.config["cache_dir"] is None
        assert result.config["cache_hits"] == 0
