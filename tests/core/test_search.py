"""Algorithm 1 search loop: serial, parallel, predictor-driven."""
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.evaluator import EvaluationConfig
from repro.core.predictor import EpsilonGreedyPredictor, RandomPredictor
from repro.core.search import SearchConfig, search_mixer, search_with_predictor
from repro.graphs.generators import erdos_renyi_graph
from repro.parallel.executor import MultiprocessingExecutor, ThreadExecutor


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(5, 0.6, seed=s, require_connected=True) for s in (3, 4)]


@pytest.fixture(scope="module")
def tiny_config():
    return SearchConfig(
        p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
    )


class TestSearchMixer:
    def test_result_structure(self, graphs, tiny_config):
        result = search_mixer(graphs, tiny_config)
        assert len(result.depth_results) == 2
        assert result.num_candidates == 2 * 5  # k_max=1: 5 per depth
        assert result.best_tokens
        assert 0 < result.best_ratio <= 1.0 + 1e-9

    def test_best_is_max_reward_across_depths(self, graphs, tiny_config):
        result = search_mixer(graphs, tiny_config)
        all_evals = [e for d in result.depth_results for e in d.evaluations]
        assert result.best_ratio == max(e.reward for e in all_evals)

    def test_num_samples_truncates(self, graphs):
        config = SearchConfig(
            p_max=1, k_max=2, num_samples=7,
            evaluation=EvaluationConfig(max_steps=8, seed=1),
        )
        result = search_mixer(graphs, config)
        assert result.num_candidates == 7

    def test_depth_timing_recorded(self, graphs, tiny_config):
        result = search_mixer(graphs, tiny_config)
        assert all(d.seconds > 0 for d in result.depth_results)
        assert result.total_seconds >= sum(d.seconds for d in result.depth_results) * 0.9

    def test_config_recorded(self, graphs, tiny_config):
        result = search_mixer(graphs, tiny_config)
        assert result.config["p_max"] == 2
        assert result.config["executor"] == "serial"

    def test_deeper_p_never_selected_without_gain(self, graphs, tiny_config):
        """SELECT_BEST keeps the earlier depth on ties (> not >=)."""
        result = search_mixer(graphs, tiny_config)
        equal_or_better = [
            e for d in result.depth_results for e in d.evaluations
            if e.reward >= result.best_ratio and e.p < result.best_p
        ]
        assert not equal_or_better


class TestParallelEquivalence:
    def test_thread_executor_same_result(self, graphs, tiny_config):
        serial = search_mixer(graphs, tiny_config)
        with ThreadExecutor(2) as executor:
            threaded = search_mixer(graphs, tiny_config, executor=executor)
        assert serial.best_tokens == threaded.best_tokens
        assert serial.best_energy == pytest.approx(threaded.best_energy)

    def test_process_executor_same_result(self, graphs, tiny_config):
        """The paper's parallelization must not change search quality."""
        serial = search_mixer(graphs, tiny_config)
        with MultiprocessingExecutor(2) as executor:
            parallel = search_mixer(graphs, tiny_config, executor=executor)
        assert serial.best_tokens == parallel.best_tokens
        assert serial.best_energy == pytest.approx(parallel.best_energy)
        assert parallel.config["executor"] == "multiprocessing"


class TestPredictorDriven:
    def test_random_predictor_search(self, graphs):
        config = SearchConfig(p_max=1, k_max=2, evaluation=EvaluationConfig(max_steps=8, seed=2))
        predictor = RandomPredictor(GateAlphabet(), 2, seed=0)
        result = search_with_predictor(
            graphs, predictor, config, candidates_per_depth=6
        )
        assert result.config["predictor"] == "random"
        assert result.num_candidates <= 6

    def test_bandit_receives_rewards(self, graphs):
        config = SearchConfig(p_max=2, k_max=2, evaluation=EvaluationConfig(max_steps=8, seed=2))
        predictor = EpsilonGreedyPredictor(GateAlphabet(), 2, epsilon=0.5, seed=1)
        search_with_predictor(graphs, predictor, config, candidates_per_depth=5)
        assert predictor._length_count.sum() > 0  # rewards were propagated

    def test_controller_predictor_integration(self, graphs):
        config = SearchConfig(p_max=1, k_max=3, evaluation=EvaluationConfig(max_steps=6, seed=2))
        controller = PolicyController(GateAlphabet(), max_gates=3, seed=0)
        predictor = ControllerPredictor(controller, batch_size=4, seed=0)
        result = search_with_predictor(graphs, predictor, config, candidates_per_depth=8)
        assert result.best_tokens

    def test_rewards_flow_before_next_depth_proposals(self, graphs):
        """The closed loop is real: depth-2 proposals are drawn only after
        depth-1 rewards were fed back to the predictor."""
        events = []

        class OrderTracker(RandomPredictor):
            def propose(self, num):
                events.append("propose")
                return super().propose(num)

            def update(self, tokens, reward):
                events.append("update")
                super().update(tokens, reward)

        config = SearchConfig(
            p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=6, seed=2)
        )
        predictor = OrderTracker(GateAlphabet(), 1, seed=0)
        search_with_predictor(graphs, predictor, config, candidates_per_depth=3)
        second_propose = events.index("propose", 1)
        assert "update" in events[:second_propose]

    def test_duplicate_proposals_deduplicated(self, graphs):
        class ConstantPredictor(RandomPredictor):
            def propose(self, num):
                return [("rx",)] * num

        config = SearchConfig(p_max=1, k_max=1, evaluation=EvaluationConfig(max_steps=6, seed=2))
        predictor = ConstantPredictor(GateAlphabet(), 1, seed=0)
        result = search_with_predictor(graphs, predictor, config, candidates_per_depth=10)
        assert result.num_candidates == 1
