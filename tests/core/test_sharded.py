"""ShardedRuntime: the Fig. 2 outer level — placement, migration, merging."""

from dataclasses import replace

import pytest

from repro.core.evaluator import EvaluationConfig
from repro.core.predictor import RandomPredictor
from repro.core.runtime import RuntimeConfig, predicted_cost
from repro.core.search import SearchConfig, search_mixer, search_with_predictor
from repro.core.sharded import ShardedRuntime, ShardFailedError
from repro.graphs.generators import erdos_renyi_graph
from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.parallel.jobs import JobFailedError


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(5, 0.6, seed=s, require_connected=True) for s in (3, 4)]


@pytest.fixture(scope="module")
def tiny_config():
    return SearchConfig(
        p_max=2, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
    )


def evaluation_payload(result):
    """Everything evaluation-defining in a SearchResult (timings excluded)."""
    return (
        result.best_tokens,
        result.best_p,
        result.best_energy,
        result.best_ratio,
        [
            [replace(e, seconds=0.0) for e in d.evaluations]
            for d in result.depth_results
        ],
    )


class DeadExecutor(SerialExecutor):
    """A node that falls over after ``survive`` submissions."""

    def __init__(self, survive=0):
        self.survive = survive
        self.count = 0

    def submit(self, fn, *args):
        self.count += 1
        if self.count > self.survive:
            raise RuntimeError("node unreachable")
        return super().submit(fn, *args)


class FailingFutureExecutor(SerialExecutor):
    """Every job's future resolves to an error (worker raises every time)."""

    def submit(self, fn, *args):
        future = super().submit(fn, *args)
        failed = type(future)()
        failed.set_exception(RuntimeError("worker raises on every attempt"))
        return failed


class HangingExecutor(SerialExecutor):
    """Futures that never complete — a node whose workers went away."""

    def submit(self, fn, *args):
        from concurrent.futures import Future

        return Future()


class TestShardedMatchesSingleNode:
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_identical_search_result(self, graphs, tiny_config, num_shards):
        """Acceptance: K shards, same seed -> same best tokens/p/energy and
        the same evaluations as the single-node runtime."""
        reference = search_mixer(graphs, tiny_config)
        sharded = search_mixer(
            graphs, tiny_config, runtime=RuntimeConfig(shards=num_shards)
        )
        assert evaluation_payload(sharded) == evaluation_payload(reference)
        assert sharded.config["shards"] == num_shards
        assert sharded.config["dead_shards"] == []
        assert sharded.config["jobs_migrated"] == 0

    def test_stats_merged_across_shards(self, graphs, tiny_config):
        sharded = search_mixer(graphs, tiny_config, runtime=RuntimeConfig(shards=2))
        # Every candidate trained exactly once, summed over both shards.
        assert sharded.config["jobs_submitted"] == sharded.num_candidates
        assert sharded.config["executor"] == "sharded[serial]"

    def test_every_shard_gets_work(self, graphs, tiny_config):
        with ShardedRuntime(
            graphs, tiny_config, runtime=RuntimeConfig(shards=2)
        ) as runtime:
            runtime.run([[("rx",), ("ry",), ("h",), ("rz",)]])
        for shard in runtime.shard_states:
            assert shard.scheduler.stats.submitted > 0

    def test_shared_executor_across_shards(self, graphs, tiny_config):
        reference = search_mixer(graphs, tiny_config)
        with ThreadExecutor(2) as executor:
            sharded = search_mixer(
                graphs,
                tiny_config,
                executor=executor,
                runtime=RuntimeConfig(shards=2),
            )
        assert evaluation_payload(sharded) == evaluation_payload(reference)
        # One pool shared by both shards: counted once in the merge.
        assert sharded.config["num_workers"] == 2

    def test_warm_cache_shortcuts_sharded_run(self, graphs, tiny_config, tmp_path):
        runtime = RuntimeConfig(cache_dir=str(tmp_path), shards=2)
        cold = search_mixer(graphs, tiny_config, runtime=runtime)
        warm = search_mixer(graphs, tiny_config, runtime=runtime)
        assert warm.config["jobs_submitted"] == 0
        assert evaluation_payload(warm) == evaluation_payload(cold)

    def test_predictor_search_supports_shards(self, graphs):
        config = SearchConfig(
            p_max=2, k_max=2, evaluation=EvaluationConfig(max_steps=10, seed=1)
        )
        result = search_with_predictor(
            graphs,
            RandomPredictor(config.alphabet, k_max=2, seed=5),
            config,
            candidates_per_depth=4,
            runtime=RuntimeConfig(shards=2),
        )
        assert result.config["shards"] == 2
        assert result.num_candidates > 0


class TestShardFailure:
    def test_dead_shard_migrates_to_survivor(self, graphs, tiny_config):
        """Acceptance: candidates on a shard that dies mid-depth migrate to
        the surviving shards and the search result is unchanged."""
        reference = search_mixer(graphs, tiny_config)
        dead = DeadExecutor(survive=2)  # dies partway through depth 1
        survivor = SerialExecutor()
        sharded = search_mixer(
            graphs,
            tiny_config,
            executor=[dead, survivor],
            runtime=RuntimeConfig(shards=2),
        )
        assert evaluation_payload(sharded) == evaluation_payload(reference)
        assert sharded.config["dead_shards"] == [0]
        assert sharded.config["jobs_migrated"] > 0

    def test_timeout_exhaustion_marks_shard_dead_and_migrates(
        self, graphs, tiny_config
    ):
        """Retries exhausted purely on timeouts mean the node is
        unreachable/hanging: the shard dies and its bag completes on the
        survivor."""
        reference = search_mixer(graphs, tiny_config)
        sharded = search_mixer(
            graphs,
            tiny_config,
            executor=[HangingExecutor(), SerialExecutor()],
            runtime=RuntimeConfig(shards=2, max_retries=0, job_timeout=0.1),
        )
        assert evaluation_payload(sharded) == evaluation_payload(reference)
        assert sharded.config["dead_shards"] == [0]
        assert sharded.config["jobs_migrated"] > 0

    def test_poisoned_candidate_aborts_instead_of_cascading(
        self, graphs, tiny_config
    ):
        """A candidate whose evaluation raises on every retry is a
        candidate problem, not a node problem: the search fails with
        JobFailedError (single-node semantics) instead of burning every
        shard's retry budget and killing healthy executors."""
        survivor = SerialExecutor()
        with pytest.raises(JobFailedError):
            search_mixer(
                graphs,
                tiny_config,
                executor=[FailingFutureExecutor(), survivor],
                runtime=RuntimeConfig(shards=2, max_retries=1),
            )
        assert not survivor.tainted

    def test_all_shards_dead_raises(self, graphs, tiny_config):
        with pytest.raises(ShardFailedError, match="all 2 shard"):
            search_mixer(
                graphs,
                tiny_config,
                executor=[DeadExecutor(), DeadExecutor()],
                runtime=RuntimeConfig(shards=2),
            )

    def test_cause_preserved(self, graphs, tiny_config):
        try:
            search_mixer(
                graphs,
                tiny_config,
                executor=[DeadExecutor(), DeadExecutor()],
                runtime=RuntimeConfig(shards=2),
            )
        except ShardFailedError as error:
            assert isinstance(error.cause, RuntimeError)
            assert "node unreachable" in str(error.cause)
        else:  # pragma: no cover
            pytest.fail("expected ShardFailedError")


class TestShardIndexProcesses:
    """The CLI's --shard-index mode: one SearchRuntime process per shard,
    meeting in a shared cache; a final merge run re-trains nothing."""

    def test_shard_processes_cover_bag_exactly_once(
        self, graphs, tiny_config, tmp_path
    ):
        reference = search_mixer(graphs, tiny_config)
        total_jobs = 0
        for index in range(2):
            partial = search_mixer(
                graphs,
                tiny_config,
                runtime=RuntimeConfig(
                    cache_dir=str(tmp_path),
                    shards=2,
                    shard_index=index,
                    cache_flush_every=1,
                ),
            )
            assert partial.config["shard_index"] == index
            total_jobs += partial.config["jobs_submitted"]
        # Disjoint + complete: the shard processes trained the whole bag
        # between them, nothing twice.
        assert total_jobs == reference.num_candidates

        merged = search_mixer(
            graphs, tiny_config, runtime=RuntimeConfig(cache_dir=str(tmp_path))
        )
        assert merged.config["jobs_submitted"] == 0
        assert evaluation_payload(merged) == evaluation_payload(reference)

    def test_shard_process_skips_depth_checkpoint(
        self, graphs, tiny_config, tmp_path
    ):
        """A shard process must never checkpoint a partial depth as if it
        were the whole depth."""
        search_mixer(
            graphs,
            tiny_config,
            runtime=RuntimeConfig(cache_dir=str(tmp_path), shards=2, shard_index=0),
        )
        resumed = search_mixer(
            graphs,
            tiny_config,
            runtime=RuntimeConfig(cache_dir=str(tmp_path), resume=True),
        )
        assert resumed.config["restored_depths"] == 0
        assert evaluation_payload(resumed) == evaluation_payload(
            search_mixer(graphs, tiny_config)
        )


    def test_predictor_rejected_in_shard_index_mode(self, graphs, tmp_path):
        """Predictor proposals depend on per-shard reward feedback, so
        sibling shard processes would silently diverge — refuse upfront."""
        config = SearchConfig(
            p_max=2, k_max=2, evaluation=EvaluationConfig(max_steps=10, seed=1)
        )
        with pytest.raises(ValueError, match="concrete per-depth candidate"):
            search_with_predictor(
                graphs,
                RandomPredictor(config.alphabet, k_max=2, seed=5),
                config,
                candidates_per_depth=4,
                runtime=RuntimeConfig(
                    cache_dir=str(tmp_path), shards=2, shard_index=0
                ),
            )

    def test_more_shards_than_candidates_gives_clear_error(
        self, graphs, tiny_config, tmp_path
    ):
        """A shard whose slice is empty at every depth reports a
        configuration error, not a bare 'no evaluations' crash."""
        with pytest.raises(ValueError, match="received no candidates"):
            search_mixer(
                graphs,
                tiny_config,
                runtime=RuntimeConfig(
                    cache_dir=str(tmp_path), shards=50, shard_index=49
                ),
            )


class TestValidation:
    def test_executor_count_must_match_shards(self, graphs, tiny_config):
        with pytest.raises(ValueError, match="3 executors for 2 shards"):
            ShardedRuntime(
                graphs,
                tiny_config,
                executors=[SerialExecutor()] * 3,
                runtime=RuntimeConfig(shards=2),
            )

    def test_shard_index_rejected(self, graphs, tiny_config):
        with pytest.raises(ValueError, match="shard_index"):
            ShardedRuntime(
                graphs,
                tiny_config,
                runtime=RuntimeConfig(shards=2, shard_index=0),
            )

    def test_executor_sequence_list_selects_sharded_runtime(self, graphs, tiny_config):
        """A bare executor sequence is enough to opt in: one shard per
        executor (here 1 — useful as the K=1 baseline in benches)."""
        result = search_mixer(graphs, tiny_config, executor=[SerialExecutor()])
        assert result.config["executor"] == "sharded[serial]"

    def test_executor_sequence_rejected_for_shard_index_process(
        self, graphs, tiny_config, tmp_path
    ):
        """A process pinned to one shard is single-node execution; handing
        it a per-shard executor list is a configuration error."""
        with pytest.raises(ValueError, match="sharded execution"):
            search_mixer(
                graphs,
                tiny_config,
                executor=[SerialExecutor(), SerialExecutor()],
                runtime=RuntimeConfig(
                    cache_dir=str(tmp_path), shards=2, shard_index=0
                ),
            )

    def test_runtime_config_validates_shards(self):
        with pytest.raises(ValueError, match="shards"):
            RuntimeConfig(shards=0)
        with pytest.raises(ValueError, match="shard_index"):
            RuntimeConfig(shards=2, shard_index=2)
        with pytest.raises(ValueError, match="cache_flush_every"):
            RuntimeConfig(cache_flush_every=0)


class TestPredictedCost:
    def test_scales_with_tokens_and_depth(self):
        assert predicted_cost(("rx", "ry"), 2) > predicted_cost(("rx",), 2)
        assert predicted_cost(("rx",), 3) > predicted_cost(("rx",), 1)
