"""The workload key threaded through configs, caches, and the facade.

A result computed under one problem must never be served to a sweep of
another: the workload key has to reach every config fingerprint, every
cache key, and every layer's validation. These tests pin that plumbing.
"""

import pytest

from repro.api import (
    Config,
    reconcile_workload,
    resolve_workload,
    resolve_workload_spec,
)
from repro.core.cache import candidate_key, config_fingerprint
from repro.core.evaluator import EvaluationConfig, Evaluator, classical_optima
from repro.graphs.generators import erdos_renyi_graph
from repro.workloads import available_workloads, get_workload


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(6, 0.5, seed=9, require_connected=True)]


class TestConfigValidation:
    def test_unknown_workload_rejected_with_options(self):
        with pytest.raises(ValueError, match="maxcut"):
            EvaluationConfig(workload="knapsack")

    def test_qtensor_engine_is_maxcut_only(self):
        with pytest.raises(ValueError, match="qtensor"):
            EvaluationConfig(engine="qtensor", workload="ising")

    def test_unknown_init_strategy_rejected(self):
        with pytest.raises(ValueError, match="interp"):
            EvaluationConfig(init_strategy="warm")

    def test_facade_config_threads_workload_and_init(self):
        cfg = Config(workload="maxsat", init_strategy="ramp").evaluation_config()
        assert cfg.workload == "maxsat"
        assert cfg.init_strategy == "ramp"


class TestCacheFingerprints:
    def test_every_workload_pair_gets_distinct_fingerprints(self):
        fps = {
            key: config_fingerprint(EvaluationConfig(workload=key))
            for key in available_workloads()
        }
        assert len(set(fps.values())) == len(fps)

    def test_candidate_keys_never_collide_across_workloads(self):
        keys = {
            candidate_key(
                "graphs-fp",
                ("rx", "ry"),
                2,
                config_fingerprint(EvaluationConfig(workload=key)),
            )
            for key in available_workloads()
        }
        assert len(keys) == len(available_workloads())

    def test_same_workload_same_key(self):
        a = config_fingerprint(EvaluationConfig(workload="ising"))
        b = config_fingerprint(EvaluationConfig(workload="ising"))
        assert a == b

    def test_init_strategy_changes_the_fingerprint(self):
        assert config_fingerprint(
            EvaluationConfig(init_strategy="uniform")
        ) != config_fingerprint(EvaluationConfig(init_strategy="interp"))


class TestPerWorkloadEvaluation:
    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_evaluator_uses_the_workload_oracle(self, key):
        problem = get_workload(key)
        graphs = list(problem.dataset(1, num_nodes=6, dataset_seed=3))
        evaluator = Evaluator(
            graphs, EvaluationConfig(max_steps=15, seed=4, workload=key)
        )
        result = evaluator.evaluate(("rx",), 1)
        optimum = problem.classical_optimum(graphs[0])
        assert result.per_graph_energy[0] <= optimum + 1e-9
        assert result.per_graph_ratio[0] == pytest.approx(
            result.per_graph_energy[0] / optimum
        )

    def test_same_graph_different_workloads_different_energies(self, graphs):
        results = {}
        for key in ("maxcut", "maxsat"):
            evaluator = Evaluator(
                graphs, EvaluationConfig(max_steps=15, seed=4, workload=key)
            )
            results[key] = evaluator.evaluate(("rx",), 1).energy
        assert results["maxcut"] != results["maxsat"]

    def test_classical_optima_per_workload(self, graphs):
        per_key = {
            key: classical_optima(graphs, key) for key in available_workloads()
        }
        assert per_key["maxcut"] != per_key["maxsat"]
        assert all(len(v) == 1 for v in per_key.values())


class TestSpecResolution:
    @pytest.mark.parametrize(
        ("spec", "implied"),
        [
            ("er:2:7", "maxcut"),
            ("regular:2:7", "maxcut"),
            ("wmaxcut:2:7", "wmaxcut"),
            ("maxsat:2:7", "maxsat"),
            ("ising:2:7", "ising"),
        ],
    )
    def test_families_imply_their_problem(self, spec, implied):
        key, graph_list = resolve_workload_spec(spec)
        assert key == implied
        assert len(graph_list) == 2

    def test_raw_graphs_imply_nothing(self, graphs):
        key, graph_list = resolve_workload_spec(graphs)
        assert key is None
        assert graph_list == list(graphs)

    def test_resolve_workload_stays_compatible(self):
        assert len(resolve_workload("maxsat:3:5")) == 3

    def test_unknown_family_lists_all_options(self):
        with pytest.raises(ValueError, match="ising"):
            resolve_workload_spec("barabasi:3")


class TestReconcile:
    def test_implied_key_fills_the_default(self):
        assert reconcile_workload(Config(), "ising").workload == "ising"

    def test_matching_explicit_key_is_a_noop(self):
        cfg = Config(workload="maxsat")
        assert reconcile_workload(cfg, "maxsat") is cfg

    def test_no_implication_leaves_config_alone(self):
        cfg = Config(workload="wmaxcut")
        assert reconcile_workload(cfg, None) is cfg

    def test_conflicting_explicit_key_is_an_error(self):
        with pytest.raises(ValueError, match="drop one"):
            reconcile_workload(Config(workload="maxsat"), "ising")

    def test_search_threads_the_implied_key_into_the_result(self):
        from repro.api import search

        result = search(
            "ising:1:5", depths=1, config=Config(k_min=1, k_max=1, steps=10)
        )
        assert result.config["workload"] == "ising"
