"""Figure drivers produce the paper's shapes at test scale.

These are miniature versions of the real benches (small graphs, few
optimizer steps) asserting structure, not statistics.
"""

import numpy as np
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.evaluator import EvaluationConfig
from repro.core.search import SearchConfig
from repro.experiments.comparison import run_fig8, run_fig9
from repro.experiments.discovery import PAPER_FIG7_MIXERS, draw_mixer, run_fig6, run_fig7
from repro.experiments.profiling import candidate_bag, measure_candidate_durations, run_fig5
from repro.experiments.scale import SCALES, get_scale
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph


@pytest.fixture(scope="module")
def er_graphs():
    return [erdos_renyi_graph(5, 0.6, seed=s, require_connected=True) for s in (1, 2)]


@pytest.fixture(scope="module")
def reg_graphs():
    return [random_regular_graph(6, 3, seed=s) for s in (1, 2)]


@pytest.fixture(scope="module")
def quick():
    return EvaluationConfig(max_steps=8, seed=0)


class TestCandidateBag:
    def test_deterministic_and_truncated(self):
        bag = candidate_bag(GateAlphabet(), 2, 7)
        assert len(bag) == 7
        assert bag == candidate_bag(GateAlphabet(), 2, 7)

    def test_full_space_when_none(self):
        assert len(candidate_bag(GateAlphabet(), 2, None)) == 30


class TestFig5Driver:
    def test_structure_and_validation(self, er_graphs, quick):
        from repro.parallel.scheduler import OverheadModel

        bag = candidate_bag(GateAlphabet(), 1, 4)
        # zero overheads: at test scale (sub-second tasks) the realistic
        # startup costs would rightly dominate and hide the scaling shape
        result = run_fig5(
            er_graphs[0], p=1, candidates=bag, config=quick,
            core_counts=(2, 4, 8), validate_workers=(),
            overhead=OverheadModel(),
        )
        assert len(result.simulated_seconds) == 3
        assert result.serial_seconds > 0
        # simulated parallel must beat serial (4 tasks, >=2 cores)
        assert min(result.simulated_seconds) < result.serial_seconds
        assert result.best_fraction_of_serial < 1.0

    def test_measured_durations_positive(self, er_graphs, quick):
        bag = candidate_bag(GateAlphabet(), 1, 3)
        durations = measure_candidate_durations(er_graphs[0], 1, bag, quick)
        assert len(durations) == 3
        assert all(d > 0 for d in durations)


class TestFig6Driver:
    def test_search_and_drawing(self, er_graphs):
        config = SearchConfig(
            p_max=1, k_max=2, mode="combinations",
            evaluation=EvaluationConfig(max_steps=8, seed=0),
        )
        result = run_fig6(er_graphs, config=config, draw_qubits=4)
        assert result.best_tokens
        assert "q0:" in result.drawing

    def test_draw_mixer_paper_layout(self):
        text = draw_mixer(("rx", "ry"), num_qubits=10)
        assert len(text.splitlines()) == 10
        assert "RX(2*beta)" in text


class TestFig7Driver:
    def test_all_paper_mixers_scored(self, reg_graphs, quick):
        result = run_fig7(reg_graphs, p=1, config=quick)
        assert result.mixers == [tuple(m) for m in PAPER_FIG7_MIXERS]
        assert len(result.ratios) == 4
        assert all(0 < r <= 1.0 + 1e-9 for r in result.ratios)
        assert result.winner in result.mixers

    def test_labels_match_paper_style(self, reg_graphs, quick):
        result = run_fig7(reg_graphs, p=1, config=quick)
        assert "('rx', 'ry')" in result.labels


class TestFig8And9Drivers:
    def test_fig8_aggregates_over_p(self, er_graphs, quick):
        result = run_fig8(er_graphs, p_values=(1, 2), config=quick)
        assert set(result.per_p) == {"baseline", "qnas"}
        assert len(result.per_p["qnas"]) == 2
        for name in ("baseline", "qnas"):
            assert result.aggregated[name] == pytest.approx(
                np.mean(result.per_p[name])
            )
        assert result.winner() in ("baseline", "qnas")

    def test_fig9_per_p_series(self, reg_graphs, quick):
        result = run_fig9(reg_graphs, p_values=(1, 2), config=quick)
        assert result.p_values == [1, 2]
        assert all(len(v) == 2 for v in result.per_p.values())

    def test_per_graph_distributions_recorded(self, er_graphs, quick):
        result = run_fig8(er_graphs, p_values=(1,), config=quick)
        assert len(result.per_graph["qnas"][0]) == len(er_graphs)


class TestScale:
    def test_presets_exist(self):
        assert set(SCALES) == {"ci", "laptop", "paper"}

    def test_paper_scale_matches_paper_numbers(self):
        paper = SCALES["paper"]
        assert paper.num_graphs == 20
        assert paper.max_steps == 200
        assert paper.num_runs == 5
        assert paper.p_max == 4

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("QARCH_BENCH_SCALE", "laptop")
        assert get_scale().name == "laptop"

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("QARCH_BENCH_SCALE", "laptop")
        assert get_scale("ci").name == "ci"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")
