"""ASCII figure rendering."""

import pytest

from repro.experiments.figures import render_bars, render_grouped_bars, render_series, render_table


class TestTable:
    def test_alignment_and_header(self):
        text = render_table(["p", "time"], [[1, 2.5], [2, 10.25]])
        lines = text.splitlines()
        assert lines[0].startswith("p")
        assert "2.5000" in text
        assert len(lines) == 4  # header, rule, 2 rows

    def test_float_format_override(self):
        text = render_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text and "1.2345" not in text


class TestBars:
    def test_larger_value_longer_bar(self):
        text = render_bars(["a", "b"], [1.0, 3.0], vmin=0.0)
        bar_a = text.splitlines()[0].count("█")
        bar_b = text.splitlines()[1].count("█")
        assert bar_b > bar_a

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bars([], []) == "(no data)"

    def test_constant_values_no_crash(self):
        text = render_bars(["a", "b"], [2.0, 2.0])
        assert "2.0000" in text


class TestGroupedBars:
    def test_groups_present(self):
        text = render_grouped_bars(
            ["p=1", "p=2"], {"baseline": [0.8, 0.9], "qnas": [0.85, 0.95]}, vmin=0.0
        )
        assert "p=1:" in text and "p=2:" in text
        assert "baseline" in text and "qnas" in text

    def test_empty(self):
        assert render_grouped_bars([], {}) == "(no data)"


class TestSeries:
    def test_columns_per_series(self):
        text = render_series("p", [1, 2], {"serial": [10.0, 20.0], "parallel": [6.0, 9.0]})
        header = text.splitlines()[0]
        assert "serial" in header and "parallel" in header
        assert "20.000" in text
