"""Experiment record persistence."""

from repro.experiments.records import ExperimentRecord


class TestExperimentRecord:
    def test_save_and_load(self, tmp_path):
        record = ExperimentRecord(
            experiment="fig4_test",
            paper_claim="parallel >50% faster",
            parameters={"p_max": 4},
            measured={"serial": [1.0, 2.0], "parallel": [0.6, 1.0]},
            verdict="shape holds",
        )
        path = record.save(tmp_path)
        assert path.name == "fig4_test.json"
        loaded = ExperimentRecord.load("fig4_test", tmp_path)
        assert loaded.paper_claim == record.paper_claim
        assert loaded.measured["serial"] == [1.0, 2.0]
        assert loaded.verdict == "shape holds"

    def test_timestamp_populated(self):
        record = ExperimentRecord(experiment="x", paper_claim="y")
        assert record.timestamp > 0
