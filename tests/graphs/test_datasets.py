"""Paper dataset pinning."""

from repro.graphs.datasets import (
    ER_PROBABILITIES,
    paper_er_dataset,
    paper_regular_dataset,
    profiling_graph,
)


class TestERDataset:
    def test_default_matches_paper_shape(self):
        graphs = paper_er_dataset()
        assert len(graphs) == 20
        assert all(g.num_nodes == 10 for g in graphs)

    def test_all_connected(self):
        assert all(g.is_connected() for g in paper_er_dataset())

    def test_varying_connectivity(self):
        """'varying degrees of connectivity': densities spread over the ladder."""
        graphs = paper_er_dataset()
        counts = sorted({g.num_edges for g in graphs})
        assert len(counts) >= 5
        assert counts[-1] - counts[0] >= 8

    def test_deterministic(self):
        assert paper_er_dataset() == paper_er_dataset()

    def test_seed_changes_instances(self):
        assert paper_er_dataset(dataset_seed=1) != paper_er_dataset(dataset_seed=2)

    def test_prefix_stability(self):
        """Requesting fewer graphs yields a prefix of the full dataset, so
        scaled-down benches use the same instances as the paper-scale run."""
        assert paper_er_dataset(5) == paper_er_dataset(20)[:5]

    def test_probability_ladder_length(self):
        assert len(ER_PROBABILITIES) == 5


class TestRegularDataset:
    def test_default_matches_paper_shape(self):
        graphs = paper_regular_dataset()
        assert len(graphs) == 20
        assert all(g.num_nodes == 10 for g in graphs)

    def test_four_regular(self):
        for g in paper_regular_dataset():
            assert all(g.degree(v) == 4 for v in range(g.num_nodes))

    def test_deterministic(self):
        assert paper_regular_dataset() == paper_regular_dataset()

    def test_distinct_instances(self):
        graphs = paper_regular_dataset()
        assert len(set(graphs)) == len(graphs)

    def test_disjoint_from_er_dataset(self):
        """§3.2 calls it 'a separate dataset'."""
        er = set(paper_er_dataset())
        regular = set(paper_regular_dataset())
        assert not (er & regular)


class TestProfilingGraph:
    def test_is_first_er_instance(self):
        assert profiling_graph() == paper_er_dataset(1)[0]
