"""Paper dataset pinning."""

from repro.graphs.datasets import (
    ER_PROBABILITIES,
    paper_er_dataset,
    paper_regular_dataset,
    profiling_graph,
)


class TestERDataset:
    def test_default_matches_paper_shape(self):
        graphs = paper_er_dataset()
        assert len(graphs) == 20
        assert all(g.num_nodes == 10 for g in graphs)

    def test_all_connected(self):
        assert all(g.is_connected() for g in paper_er_dataset())

    def test_varying_connectivity(self):
        """'varying degrees of connectivity': densities spread over the ladder."""
        graphs = paper_er_dataset()
        counts = sorted({g.num_edges for g in graphs})
        assert len(counts) >= 5
        assert counts[-1] - counts[0] >= 8

    def test_deterministic(self):
        assert paper_er_dataset() == paper_er_dataset()

    def test_seed_changes_instances(self):
        assert paper_er_dataset(dataset_seed=1) != paper_er_dataset(dataset_seed=2)

    def test_prefix_stability(self):
        """Requesting fewer graphs yields a prefix of the full dataset, so
        scaled-down benches use the same instances as the paper-scale run."""
        assert paper_er_dataset(5) == paper_er_dataset(20)[:5]

    def test_probability_ladder_length(self):
        assert len(ER_PROBABILITIES) == 5


class TestRegularDataset:
    def test_default_matches_paper_shape(self):
        graphs = paper_regular_dataset()
        assert len(graphs) == 20
        assert all(g.num_nodes == 10 for g in graphs)

    def test_four_regular(self):
        for g in paper_regular_dataset():
            assert all(g.degree(v) == 4 for v in range(g.num_nodes))

    def test_deterministic(self):
        assert paper_regular_dataset() == paper_regular_dataset()

    def test_distinct_instances(self):
        graphs = paper_regular_dataset()
        assert len(set(graphs)) == len(graphs)

    def test_disjoint_from_er_dataset(self):
        """§3.2 calls it 'a separate dataset'."""
        er = set(paper_er_dataset())
        regular = set(paper_regular_dataset())
        assert not (er & regular)


class TestProfilingGraph:
    def test_is_first_er_instance(self):
        assert profiling_graph() == paper_er_dataset(1)[0]


class TestWorkloadDatasets:
    """The per-workload dataset factories added with the workload registry."""

    def _is_connected(self, graph):
        import numpy as np

        adj = graph.adjacency_matrix() > 0
        reach = np.linalg.matrix_power(
            adj + np.eye(graph.num_nodes, dtype=bool), graph.num_nodes
        )
        return bool(reach[0].all())

    def test_weighted_shares_er_topology(self):
        from repro.graphs.datasets import paper_weighted_dataset

        plain = paper_er_dataset(4, dataset_seed=9)
        weighted = paper_weighted_dataset(4, dataset_seed=9)
        assert [g.edges for g in plain] == [g.edges for g in weighted]
        assert all(
            0.25 <= w <= 1.75 for g in weighted for w in g.weights
        )

    def test_weighted_deterministic_and_seed_sensitive(self):
        from repro.graphs.datasets import paper_weighted_dataset

        assert (
            paper_weighted_dataset(2, dataset_seed=9)[0].weights
            == paper_weighted_dataset(2, dataset_seed=9)[0].weights
        )
        assert (
            paper_weighted_dataset(2, dataset_seed=9)[0].weights
            != paper_weighted_dataset(2, dataset_seed=10)[0].weights
        )

    def test_maxsat_instances_connected_positive_weights(self):
        from repro.graphs.datasets import paper_maxsat_dataset

        for graph in paper_maxsat_dataset(5, dataset_seed=9):
            assert self._is_connected(graph)
            assert all(0.5 <= w <= 1.5 for w in graph.weights)

    def test_spin_glass_couplings_signed_and_bounded(self):
        from repro.graphs.datasets import paper_spin_glass_dataset

        weights = [
            w for g in paper_spin_glass_dataset(5, dataset_seed=9) for w in g.weights
        ]
        assert all(-1.0 <= w <= 1.0 for w in weights)
        assert min(weights) < 0 < max(weights)

    def test_family_table_keys_and_implications(self):
        from repro.graphs.datasets import DATASET_FAMILIES
        from repro.workloads import available_workloads

        assert set(DATASET_FAMILIES) == {"er", "regular", "wmaxcut", "maxsat", "ising"}
        implied = {key for key, _ in DATASET_FAMILIES.values()}
        assert implied == set(available_workloads())

    def test_families_are_mutually_disjoint(self):
        from repro.graphs.datasets import DATASET_FAMILIES

        first_instances = {
            family: factory(1, dataset_seed=9)[0]
            for family, (_, factory) in DATASET_FAMILIES.items()
        }
        # er/wmaxcut intentionally share topology; all other pairs differ
        assert first_instances["er"].edges != first_instances["maxsat"].edges or (
            first_instances["er"].weights != first_instances["maxsat"].weights
        )
        assert first_instances["maxsat"].weights != first_instances["ising"].weights
