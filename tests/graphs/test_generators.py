"""Graph type and random generators."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


class TestGraphType:
    def test_canonical_edge_ordering(self):
        g = Graph(3, ((2, 0), (1, 0)))
        assert g.edges == ((0, 1), (0, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, ((1, 1),))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, ((0, 1), (1, 0)))

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, ((0, 2),))

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            Graph(2, ((0, 1),), (1.0, 2.0))

    def test_weights_follow_edge_reordering(self):
        g = Graph(3, ((2, 1), (1, 0)), (5.0, 7.0))
        assert g.edges == ((0, 1), (1, 2))
        assert g.weights == (7.0, 5.0)

    def test_default_weights_are_one(self):
        assert Graph(2, ((0, 1),)).weights == (1.0,)

    def test_degree_and_degrees_agree(self):
        g = complete_graph(5)
        degs = g.degrees()
        for node in range(5):
            assert g.degree(node) == degs[node] == 4

    def test_neighbors(self):
        assert star_graph(4).neighbors(0) == [1, 2, 3]
        assert star_graph(4).neighbors(2) == [0]

    def test_has_edge_symmetric(self):
        g = path_graph(3)
        assert g.has_edge(1, 0) and g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_adjacency_matrix_symmetric(self):
        g = cycle_graph(5)
        adj = g.adjacency_matrix()
        np.testing.assert_array_equal(adj, adj.T)
        assert adj.sum() == 2 * g.num_edges

    def test_connectivity(self):
        assert cycle_graph(4).is_connected()
        assert not Graph(4, ((0, 1), (2, 3))).is_connected()
        assert Graph(1, ()).is_connected()

    def test_hashable_as_cache_key(self):
        a = Graph(2, ((0, 1),))
        b = Graph(2, ((0, 1),))
        assert len({a, b}) == 1

    def test_empty_edge_array_shape(self):
        assert Graph(3, ()).edge_array().shape == (0, 2)


class TestDeterministicFamilies:
    def test_complete_graph_edge_count(self):
        assert complete_graph(6).num_edges == 15

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path_edges(self):
        assert path_graph(4).edges == ((0, 1), (1, 2), (2, 3))

    def test_star_degrees(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert all(g.degree(i) == 1 for i in range(1, 5))


class TestErdosRenyi:
    def test_reproducible_with_seed(self):
        a = erdos_renyi_graph(10, 0.4, seed=3)
        b = erdos_renyi_graph(10, 0.4, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_graph(10, 0.4, seed=3)
        b = erdos_renyi_graph(10, 0.4, seed=4)
        assert a != b

    def test_p_zero_and_one(self):
        assert erdos_renyi_graph(8, 0.0, seed=0).num_edges == 0
        assert erdos_renyi_graph(8, 1.0, seed=0).num_edges == 28

    def test_require_connected(self):
        g = erdos_renyi_graph(10, 0.3, seed=5, require_connected=True)
        assert g.is_connected()

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError):
            erdos_renyi_graph(5, 0.0, seed=0, require_connected=True, max_tries=3)

    def test_edge_probability_statistics(self):
        """Mean edge count over many draws ~ p * C(n,2) (cross-checked
        against networkx's generator)."""
        n, p, trials = 12, 0.35, 200
        possible = n * (n - 1) // 2
        ours = np.mean([
            erdos_renyi_graph(n, p, seed=i).num_edges for i in range(trials)
        ])
        theirs = np.mean([
            nx.gnp_random_graph(n, p, seed=i).number_of_edges() for i in range(trials)
        ])
        assert ours == pytest.approx(p * possible, rel=0.1)
        assert ours == pytest.approx(theirs, rel=0.1)


class TestRandomRegular:
    def test_degrees_exact(self):
        g = random_regular_graph(10, 4, seed=1)
        assert all(g.degree(v) == 4 for v in range(10))

    def test_reproducible(self):
        assert random_regular_graph(10, 4, seed=2) == random_regular_graph(10, 4, seed=2)

    def test_parity_constraint(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3)

    def test_degree_bound(self):
        with pytest.raises(ValueError, match="must be <"):
            random_regular_graph(4, 4)

    def test_zero_degree(self):
        assert random_regular_graph(4, 0).num_edges == 0

    def test_simple_no_multi_edges(self):
        for seed in range(20):
            g = random_regular_graph(10, 4, seed=seed)
            assert len(set(g.edges)) == g.num_edges == 20

    def test_edge_count_formula(self):
        g = random_regular_graph(12, 3, seed=0)
        assert g.num_edges == 12 * 3 // 2
