"""Graph JSON serialization."""

import json

import pytest

from repro.graphs.generators import Graph, erdos_renyi_graph
from repro.graphs.io import graph_from_dict, graph_to_dict, load_graphs, save_graphs


class TestDictRoundTrip:
    def test_unweighted(self):
        g = erdos_renyi_graph(8, 0.5, seed=1)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_weighted(self):
        g = Graph(3, ((0, 1), (1, 2)), (2.0, 0.5))
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.weights == (2.0, 0.5)

    def test_unit_weights_omitted_from_dict(self):
        d = graph_to_dict(Graph(2, ((0, 1),)))
        assert "weights" not in d

    def test_dict_is_json_safe(self):
        g = erdos_renyi_graph(5, 0.5, seed=2)
        json.dumps(graph_to_dict(g))  # must not raise


class TestFileRoundTrip:
    def test_save_load_many(self, tmp_path):
        graphs = [erdos_renyi_graph(6, 0.5, seed=i) for i in range(5)]
        path = tmp_path / "graphs.json"
        save_graphs(graphs, path)
        assert load_graphs(path) == graphs

    def test_empty_list(self, tmp_path):
        path = tmp_path / "empty.json"
        save_graphs([], path)
        assert load_graphs(path) == []

    def test_format_field_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "graphs": []}))
        with pytest.raises(ValueError, match="format"):
            load_graphs(path)
