"""Cross-engine consistency on the paper's actual workload circuits.

Every simulation pathway in the package — dense state vector, tensor
network with each ordering heuristic and backend, density matrix without
noise, and the p=1 closed form — must report the same QAOA energies on the
paper's 10-node datasets.
"""

import numpy as np
import pytest

from repro.graphs.datasets import paper_er_dataset, paper_regular_dataset
from repro.qaoa.analytic import maxcut_energy_p1
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.expectation import cut_values
from repro.simulators.noise import DensityMatrixSimulator

ANGLES_P1 = [0.41, -0.63]
ANGLES_P2 = [0.41, -0.63, 0.17, 0.52]


@pytest.fixture(scope="module")
def er10():
    return paper_er_dataset(2)


@pytest.fixture(scope="module")
def reg10():
    return paper_regular_dataset(2)


class TestTenQubitConsistency:
    @pytest.mark.parametrize("tokens", [("rx",), ("rx", "ry")])
    def test_p1_all_engines_agree(self, er10, tokens):
        for graph in er10:
            ansatz = build_qaoa_ansatz(graph, 1, tokens)
            sv = AnsatzEnergy(ansatz, engine="statevector").value(ANGLES_P1)
            tn = AnsatzEnergy(ansatz, engine="qtensor").value(ANGLES_P1)
            assert tn == pytest.approx(sv, abs=1e-8)
            if tokens == ("rx",):
                closed = maxcut_energy_p1(graph, *ANGLES_P1)
                assert sv == pytest.approx(closed, abs=1e-9)

    def test_p2_tn_vs_dense_on_regular(self, reg10):
        for graph in reg10:
            ansatz = build_qaoa_ansatz(graph, 2, ("rx", "ry"))
            sv = AnsatzEnergy(ansatz, engine="statevector").value(ANGLES_P2)
            tn = AnsatzEnergy(ansatz, engine="qtensor").value(ANGLES_P2)
            assert tn == pytest.approx(sv, abs=1e-8)

    def test_density_matrix_agrees_noiseless(self, er10):
        graph = er10[0]
        ansatz = build_qaoa_ansatz(graph, 1)
        bound = ansatz.bind(ANGLES_P1)
        rho = DensityMatrixSimulator().run(bound)
        e_rho = DensityMatrixSimulator.expectation(rho, cut_values(graph))
        e_sv = AnsatzEnergy(ansatz).value(ANGLES_P1)
        assert e_rho == pytest.approx(e_sv, abs=1e-9)

    def test_ordering_heuristics_agree(self, reg10):
        graph = reg10[0]
        bound = build_qaoa_ansatz(graph, 1, ("ry", "p")).bind(ANGLES_P1)
        energies = [
            QTensorSimulator(ordering_method=m, ordering_seed=0).maxcut_energy(
                bound, graph, initial_state="0"
            )
            for m in ("min_fill", "min_degree", "random")
        ]
        np.testing.assert_allclose(energies, energies[0], atol=1e-8)

    def test_backends_agree(self, reg10):
        graph = reg10[0]
        bound = build_qaoa_ansatz(graph, 1).bind(ANGLES_P1)
        cpu = QTensorSimulator(backend="numpy").maxcut_energy(bound, graph, initial_state="0")
        gpu = QTensorSimulator(backend="gpu").maxcut_energy(bound, graph, initial_state="0")
        assert gpu == pytest.approx(cpu, abs=1e-10)

    def test_qtensor_width_stays_small_at_p1(self, reg10):
        """On sparse 10-node graphs the lightcone keeps contraction width
        well below the qubit count — the reason TN simulation scales."""
        graph = reg10[0]
        bound = build_qaoa_ansatz(graph, 1).bind(ANGLES_P1)
        sim = QTensorSimulator()
        sim.maxcut_energy(bound, graph, initial_state="0")
        assert max(sim.last_widths) <= 8
