"""End-to-end integration: the full QArchSearch pipeline at test scale."""
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.core.predictor import RandomPredictor
from repro.core.search import SearchConfig, search_mixer, search_with_predictor
from repro.graphs.datasets import paper_er_dataset, paper_regular_dataset
from repro.parallel.executor import MultiprocessingExecutor


@pytest.fixture(scope="module")
def train_graphs():
    """Three 10-node paper-dataset ER instances (the real workload shape)."""
    return paper_er_dataset(3)


@pytest.fixture(scope="module")
def eval_graphs():
    return paper_regular_dataset(3)


class TestFullPipeline:
    def test_search_train_transfer(self, train_graphs, eval_graphs):
        """Algorithm 1 on ER training graphs; winner transfers to the
        4-regular evaluation set with a competitive ratio (the §3.2
        generalization claim at miniature scale)."""
        config = SearchConfig(
            p_max=1,
            k_max=2,
            mode="combinations",
            evaluation=EvaluationConfig(max_steps=30, seed=0),
        )
        result = search_mixer(train_graphs, config)
        assert result.num_candidates == 15

        evaluator = Evaluator(eval_graphs, EvaluationConfig(max_steps=30, seed=0))
        transferred = evaluator.evaluate(result.best_tokens, 1)
        baseline = evaluator.evaluate(("rx",), 1)
        # the searched mixer should at least match the baseline it dominated
        # in training (ties allowed: ('rx',) can itself be the winner)
        assert transferred.ratio >= baseline.ratio - 0.02

    def test_search_result_roundtrip_through_json(self, train_graphs, tmp_path):
        config = SearchConfig(
            p_max=1, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=1)
        )
        result = search_mixer(train_graphs[:1], config)
        path = tmp_path / "search.json"
        result.save(path)
        from repro.core.results import SearchResult

        loaded = SearchResult.load(path)
        assert loaded.best_tokens == result.best_tokens
        assert loaded.num_candidates == result.num_candidates

    def test_parallel_pipeline_on_paper_graphs(self, train_graphs):
        config = SearchConfig(
            p_max=1, k_max=1, evaluation=EvaluationConfig(max_steps=10, seed=2)
        )
        serial = search_mixer(train_graphs, config)
        with MultiprocessingExecutor(2) as ex:
            parallel = search_mixer(train_graphs, config, executor=ex)
        assert serial.best_tokens == parallel.best_tokens
        assert serial.best_energy == pytest.approx(parallel.best_energy)

    def test_predictor_pipeline(self, train_graphs):
        config = SearchConfig(
            p_max=2, k_max=2, evaluation=EvaluationConfig(max_steps=10, seed=3)
        )
        predictor = RandomPredictor(GateAlphabet(), 2, seed=5)
        result = search_with_predictor(
            train_graphs[:2], predictor, config, candidates_per_depth=5
        )
        assert len(result.depth_results) == 2
        assert result.best_ratio > 0.5

    def test_controller_pipeline_smoke(self, train_graphs):
        """Fig. 1 with the DNN predictor in the loop, end to end."""
        config = SearchConfig(
            p_max=1, k_max=3, evaluation=EvaluationConfig(max_steps=8, seed=4)
        )
        controller = PolicyController(GateAlphabet(), max_gates=3, seed=1)
        predictor = ControllerPredictor(controller, batch_size=4, seed=1)
        result = search_with_predictor(
            train_graphs[:1], predictor, config, candidates_per_depth=8
        )
        assert result.best_tokens
        assert predictor.updates >= 1
