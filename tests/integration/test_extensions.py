"""Integration tests for the extension features working together:
constraints + controller, VQE + constraints, fusion on discovered circuits,
warm starts inside the search protocol."""

import numpy as np

from repro.circuits.decompose import fuse_single_qubit_runs
from repro.core.alphabet import GateAlphabet
from repro.core.constraints import (
    ConstrainedPredictor,
    ConstraintSet,
    MaxGates,
    NoAdjacentRepeats,
    RequiresParameterizedGate,
)
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.core.qbuilder import QBuilder
from repro.graphs.datasets import paper_er_dataset
from repro.qaoa.observables import tfim_hamiltonian
from repro.qaoa.vqe import search_vqe_ansatz
from repro.simulators.statevector import circuit_unitary


class TestConstrainedControllerLoop:
    def test_controller_behind_constraints(self):
        """The RL controller wrapped in constraints only surfaces
        admissible candidates while still learning from rewards."""
        alphabet = GateAlphabet()
        controller = PolicyController(alphabet, max_gates=3, seed=2)
        constraints = ConstraintSet(
            [RequiresParameterizedGate(), NoAdjacentRepeats(), MaxGates(3)]
        )
        predictor = ConstrainedPredictor(
            ControllerPredictor(controller, batch_size=4, seed=2), constraints
        )
        graphs = paper_er_dataset(1)
        evaluator = Evaluator(
            graphs, EvaluationConfig(max_steps=10, seed=0)
        )
        for _ in range(3):
            proposals = predictor.propose(4)
            assert proposals, "constrained controller must keep proposing"
            for tokens in proposals:
                assert constraints.satisfied(tokens)
                predictor.update(tokens, evaluator.reward(tokens, 1))


class TestVQEWithConstraints:
    def test_constrained_vqe_candidates(self):
        H = tfim_hamiltonian(3, 1.0, 1.0)
        constraints = ConstraintSet([RequiresParameterizedGate()])
        candidates = constraints.filter([("h",), ("ry",), ("h", "rz")])
        assert ("h",) not in candidates
        ranking = search_vqe_ansatz(H, candidates, layers=2, optimizer_steps=40)
        assert ranking[0].energy <= ranking[-1].energy


class TestFusionOnDiscoveredCircuits:
    def test_bound_qaoa_circuit_fuses_and_matches(self):
        """The full trained circuit survives compiler-style fusion."""
        graphs = paper_er_dataset(1)
        builder = QBuilder()
        ansatz = builder.build_qaoa(graphs[0], ("rx", "ry"), 1)
        bound = ansatz.bind([0.4, -0.3])
        fused = fuse_single_qubit_runs(bound)
        assert fused.size() <= bound.size()
        u1, u2 = circuit_unitary(bound), circuit_unitary(fused)
        idx = np.unravel_index(np.argmax(np.abs(u1)), u1.shape)
        ratio = u1[idx] / u2[idx]
        np.testing.assert_allclose(u1, ratio * u2, atol=1e-8)


class TestWarmStartInsideEvaluation:
    def test_ramp_strategy_improves_deep_training(self):
        """At p=3 with a modest budget the ramp start should not lose to
        random starts (the ablation's claim as a regression test)."""
        graphs = paper_er_dataset(2)
        uniform = Evaluator(
            graphs, EvaluationConfig(max_steps=25, restarts=1, seed=0)
        ).evaluate(("rx",), 3)
        ramp = Evaluator(
            graphs,
            EvaluationConfig(max_steps=25, restarts=1, seed=0, init_strategy="ramp"),
        ).evaluate(("rx",), 3)
        assert ramp.energy >= uniform.energy - 0.15
