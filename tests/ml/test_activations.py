"""Activation functions: values, stability, derivative identities."""

import numpy as np
import pytest

from repro.ml.activations import dsigmoid, dtanh, log_softmax, sigmoid, softmax, tanh


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_saturation_no_overflow(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))

    def test_derivative_identity(self):
        x = np.linspace(-3, 3, 11)
        y = sigmoid(x)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(dsigmoid(y), numeric, atol=1e-8)

    def test_symmetry(self):
        x = np.array([1.7])
        assert sigmoid(x)[0] + sigmoid(-x)[0] == pytest.approx(1.0)


class TestTanh:
    def test_derivative_identity(self):
        x = np.linspace(-2, 2, 9)
        y = tanh(x)
        eps = 1e-6
        numeric = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(dtanh(y), numeric, atol=1e-8)


class TestSoftmax:
    def test_sums_to_one(self):
        p = softmax(np.array([1.0, 2.0, 3.0]))
        assert p.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([1.0, -2.0, 0.5])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_logits_stable(self):
        p = softmax(np.array([1000.0, 999.0]))
        assert np.all(np.isfinite(p))
        assert p[0] > p[1]

    def test_batch_axis(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        p = softmax(logits, axis=-1)
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(4))

    def test_log_softmax_consistent(self):
        logits = np.array([0.3, -1.2, 2.0])
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)

    def test_log_softmax_extreme_stable(self):
        out = log_softmax(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out))
