"""Hypothesis-driven finite-difference verification of every ml/ backward.

The deterministic gradient checks in ``test_layers.py`` pin one shape and
one seed per layer; these properties sweep shapes, seeds, and inputs, so a
backward pass that is only accidentally right at the pinned point (a
transposed matmul that cancels at a symmetric size, a gate-slice
off-by-one that vanishes at hidden_dim == in_dim) still fails. The same
treatment covers the REINFORCE objective: ``backprop_episode`` must
produce the gradients of ``scale * log pi(actions) - entropy_weight *
sum_t H_t`` for *every* episode, scale, and entropy weight.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import GateAlphabet
from repro.core.controller import PolicyController
from repro.ml.layers import Dense, Embedding, LSTMCell
from repro.utils.rng import as_rng

EPS = 1e-6
TOL = 1e-4  # central differences at eps=1e-6 are good to ~1e-8 relative


def numerical_grad(loss, param):
    """Central finite differences of scalar ``loss()`` w.r.t. ``param``
    (an ndarray mutated in place)."""
    grad = np.zeros_like(param)
    flat = param.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        keep = flat[i]
        flat[i] = keep + EPS
        plus = loss()
        flat[i] = keep - EPS
        minus = loss()
        flat[i] = keep
        out[i] = (plus - minus) / (2 * EPS)
    return grad


def assert_close(analytic, numeric, label):
    np.testing.assert_allclose(
        analytic, numeric, rtol=TOL, atol=TOL, err_msg=f"gradient of {label}"
    )


dims = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestDenseGradcheck:
    @given(in_dim=dims, out_dim=dims, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_params_and_input(self, in_dim, out_dim, seed):
        rng = as_rng(seed)
        layer = Dense(in_dim, out_dim, seed=seed)
        x = rng.normal(size=in_dim)
        dy = rng.normal(size=out_dim)  # fixed upstream: loss = dy . y

        def loss():
            y, _ = layer.forward(x)
            return float(dy @ y)

        layer.zero_grad()
        _, cache = layer.forward(x)
        dx = layer.backward(dy, cache)
        for name in ("W", "b"):
            assert_close(
                layer.grads[name],
                numerical_grad(loss, layer.params[name]),
                f"Dense.{name}",
            )
        assert_close(dx, numerical_grad(loss, x), "Dense input")

    @given(in_dim=dims, out_dim=dims, batch=st.integers(2, 4), seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_batched(self, in_dim, out_dim, batch, seed):
        rng = as_rng(seed)
        layer = Dense(in_dim, out_dim, seed=seed)
        x = rng.normal(size=(batch, in_dim))
        dy = rng.normal(size=(batch, out_dim))

        def loss():
            y, _ = layer.forward(x)
            return float((dy * y).sum())

        layer.zero_grad()
        _, cache = layer.forward(x)
        dx = layer.backward(dy, cache)
        for name in ("W", "b"):
            assert_close(
                layer.grads[name],
                numerical_grad(loss, layer.params[name]),
                f"Dense.{name} (batched)",
            )
        assert_close(dx, numerical_grad(loss, x), "Dense input (batched)")


class TestEmbeddingGradcheck:
    @given(vocab=st.integers(2, 6), dim=dims, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_lookup_row(self, vocab, dim, seed):
        rng = as_rng(seed)
        layer = Embedding(vocab, dim, seed=seed)
        token = int(rng.integers(vocab))
        dvec = rng.normal(size=dim)

        def loss():
            vec, _ = layer.forward(token)
            return float(dvec @ vec)

        layer.zero_grad()
        _, cache = layer.forward(token)
        layer.backward(dvec, cache)
        assert_close(
            layer.grads["E"], numerical_grad(loss, layer.params["E"]), "Embedding.E"
        )


class TestLSTMCellGradcheck:
    @given(
        in_dim=dims,
        hidden=dims,
        steps=st.integers(1, 3),
        seed=seeds,
    )
    @settings(max_examples=10, deadline=None)
    def test_bptt_params_and_inputs(self, in_dim, hidden, steps, seed):
        rng = as_rng(seed)
        cell = LSTMCell(in_dim, hidden, seed=seed)
        xs = [rng.normal(size=in_dim) for _ in range(steps)]
        # per-step upstream gradients exercise the dh-accumulation path,
        # not just the final state
        dhs = [rng.normal(size=hidden) for _ in range(steps)]

        def loss():
            h, c = cell.initial_state()
            total = 0.0
            for x, dh in zip(xs, dhs):
                h, c, _ = cell.forward(x, h, c)
                total += float(dh @ h)
            return total

        cell.zero_grad()
        h, c = cell.initial_state()
        caches = []
        for x in xs:
            h, c, cache = cell.forward(x, h, c)
            caches.append(cache)
        dh_next = np.zeros(hidden)
        dc_next = np.zeros(hidden)
        dxs = [None] * steps
        for t in reversed(range(steps)):
            dx, dh_next, dc_next = cell.backward(
                dhs[t] + dh_next, dc_next, caches[t]
            )
            dxs[t] = dx
        for name in ("Wx", "Wh", "b"):
            assert_close(
                cell.grads[name],
                numerical_grad(loss, cell.params[name]),
                f"LSTMCell.{name} over {steps} steps",
            )
        for t in range(steps):
            assert_close(dxs[t], numerical_grad(loss, xs[t]), f"LSTM input {t}")


class TestReinforceLossGradcheck:
    """``backprop_episode`` == gradients of the written-down objective."""

    @staticmethod
    def _episode_loss(controller, taken, scale, entropy_weight):
        """Teacher-forced replay of the episode's action sequence:
        ``scale * log pi(actions) - entropy_weight * sum_t H_t``."""
        h, c = controller.lstm.initial_state()
        prev = controller.start_index
        total = 0.0
        for step, action in enumerate(taken):
            probs, h, c, _ = controller.step_probs(prev, h, c, step)
            total += scale * float(np.log(probs[action]))
            safe_log = np.log(np.maximum(probs, 1e-300))
            total -= entropy_weight * (-float(probs @ safe_log))
            prev = action
        return total

    @given(
        seed=seeds,
        scale=st.floats(-2.0, 2.0, allow_nan=False),
        entropy_weight=st.floats(0.0, 0.5, allow_nan=False),
    )
    @settings(max_examples=8, deadline=None)
    def test_backprop_episode_matches_objective(
        self, seed, scale, entropy_weight
    ):
        alphabet = GateAlphabet(("rx", "ry", "rz"))
        controller = PolicyController(
            alphabet, max_gates=3, embedding_dim=3, hidden_dim=4, seed=seed
        )
        episode = controller.sample_episode(as_rng(seed + 1))
        # the sampled trajectory includes the END step when one was drawn
        taken = [cache[-1] for cache in episode.caches]

        def loss():
            return self._episode_loss(controller, taken, scale, entropy_weight)

        controller.zero_grad()
        controller.backprop_episode(
            episode, scale=scale, entropy_weight=entropy_weight
        )
        for layer, layer_name in zip(
            controller.layers, ("embedding", "lstm", "head")
        ):
            for name, param in layer.params.items():
                assert_close(
                    layer.grads[name],
                    numerical_grad(loss, param),
                    f"{layer_name}.{name}",
                )
