"""Layer forward/backward passes, gradient-checked by finite differences."""

import numpy as np

from repro.ml.layers import Dense, Embedding, LSTMCell


def numerical_grad(fn, param, eps=1e-6):
    """Central finite differences of scalar fn w.r.t. an ndarray in place."""
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = param[idx]
        param[idx] = orig + eps
        up = fn()
        param[idx] = orig - eps
        down = fn()
        param[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, seed=0)
        y, _ = layer.forward(np.ones(3))
        assert y.shape == (5,)

    def test_forward_affine(self):
        layer = Dense(2, 2, seed=0)
        layer.params["W"] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.params["b"] = np.array([0.5, -0.5])
        y, _ = layer.forward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(y, [4.5, 5.5])

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, seed=1)
        x = rng.normal(size=4)
        weights = rng.normal(size=3)  # project output to scalar

        def loss():
            y, _ = layer.forward(x)
            return float(weights @ y)

        y, cache = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(weights, cache)
        np.testing.assert_allclose(
            layer.grads["W"], numerical_grad(loss, layer.params["W"]), atol=1e-6
        )
        np.testing.assert_allclose(
            layer.grads["b"], numerical_grad(loss, layer.params["b"]), atol=1e-6
        )
        # input gradient
        def loss_x():
            y, _ = layer.forward(x)
            return float(weights @ y)
        np.testing.assert_allclose(dx, numerical_grad(loss_x, x), atol=1e-6)

    def test_backward_accumulates(self):
        layer = Dense(2, 2, seed=0)
        x = np.ones(2)
        _, cache = layer.forward(x)
        layer.backward(np.ones(2), cache)
        first = layer.grads["W"].copy()
        layer.backward(np.ones(2), cache)
        np.testing.assert_allclose(layer.grads["W"], 2 * first)

    def test_batched_forward_backward(self):
        layer = Dense(3, 2, seed=2)
        x = np.random.default_rng(1).normal(size=(5, 3))
        y, cache = layer.forward(x)
        assert y.shape == (5, 2)
        dx = layer.backward(np.ones((5, 2)), cache)
        assert dx.shape == (5, 3)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(4, 3, seed=0)
        vec, _ = emb.forward(2)
        np.testing.assert_array_equal(vec, emb.params["E"][2])

    def test_lookup_returns_copy(self):
        emb = Embedding(4, 3, seed=0)
        vec, _ = emb.forward(1)
        vec[:] = 99.0
        assert not np.any(emb.params["E"][1] == 99.0)

    def test_backward_hits_only_used_row(self):
        emb = Embedding(4, 3, seed=0)
        _, cache = emb.forward(2)
        emb.zero_grad()
        emb.backward(np.array([1.0, 2.0, 3.0]), cache)
        np.testing.assert_array_equal(emb.grads["E"][2], [1, 2, 3])
        assert np.all(emb.grads["E"][[0, 1, 3]] == 0)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(3, 5, seed=0)
        h, c = cell.initial_state()
        assert h.shape == (5,) and c.shape == (5,)
        x = np.ones(3)
        h2, c2, _ = cell.forward(x, h, c)
        assert h2.shape == (5,) and c2.shape == (5,)

    def test_forget_bias_initialized_positive(self):
        cell = LSTMCell(2, 4, seed=0)
        assert np.all(cell.params["b"][4:8] == 1.0)

    def test_gradient_check_parameters(self):
        rng = np.random.default_rng(3)
        cell = LSTMCell(3, 4, seed=2)
        x = rng.normal(size=3)
        h0 = rng.normal(size=4)
        c0 = rng.normal(size=4)
        w_h = rng.normal(size=4)
        w_c = rng.normal(size=4)

        def loss():
            h, c, _ = cell.forward(x, h0, c0)
            return float(w_h @ h + w_c @ c)

        h, c, cache = cell.forward(x, h0, c0)
        cell.zero_grad()
        dx, dh_prev, dc_prev = cell.backward(w_h, w_c, cache)
        for name in ("Wx", "Wh", "b"):
            np.testing.assert_allclose(
                cell.grads[name], numerical_grad(loss, cell.params[name]),
                atol=1e-6, err_msg=name,
            )

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(4)
        cell = LSTMCell(3, 4, seed=5)
        x = rng.normal(size=3)
        h0 = rng.normal(size=4)
        c0 = rng.normal(size=4)
        w_h = rng.normal(size=4)

        def loss_of(arr):
            def fn():
                h, _, _ = cell.forward(x, h0, c0)
                return float(w_h @ h)
            return fn

        _, _, cache = cell.forward(x, h0, c0)
        cell.zero_grad()
        dx, dh_prev, dc_prev = cell.backward(w_h, np.zeros(4), cache)
        np.testing.assert_allclose(dx, numerical_grad(loss_of(x), x), atol=1e-6)
        np.testing.assert_allclose(dh_prev, numerical_grad(loss_of(h0), h0), atol=1e-6)
        np.testing.assert_allclose(dc_prev, numerical_grad(loss_of(c0), c0), atol=1e-6)

    def test_two_step_bptt_gradient(self):
        """Gradients flow through time: unroll two steps, check d loss/d Wx."""
        rng = np.random.default_rng(6)
        cell = LSTMCell(2, 3, seed=7)
        x1, x2 = rng.normal(size=2), rng.normal(size=2)
        w = rng.normal(size=3)

        def loss():
            h, c = cell.initial_state()
            h, c, _ = cell.forward(x1, h, c)
            h, c, _ = cell.forward(x2, h, c)
            return float(w @ h)

        h, c = cell.initial_state()
        h1, c1, cache1 = cell.forward(x1, h, c)
        h2, c2, cache2 = cell.forward(x2, h1, c1)
        cell.zero_grad()
        dx2, dh1, dc1 = cell.backward(w, np.zeros(3), cache2)
        cell.backward(dh1, dc1, cache1)
        np.testing.assert_allclose(
            cell.grads["Wx"], numerical_grad(loss, cell.params["Wx"]), atol=1e-6
        )
