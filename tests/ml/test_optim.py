"""Parameter-dict optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.ml.layers import Dense
from repro.ml.optim import SGD, AdamUpdater, clip_gradients, global_grad_norm


def _layer_with_grad(grad_value=1.0):
    layer = Dense(2, 2, seed=0)
    layer.grads["W"][...] = grad_value
    layer.grads["b"][...] = grad_value
    return layer


class TestGradNorm:
    def test_norm_value(self):
        layer = _layer_with_grad(2.0)
        expected = np.sqrt(4.0 * (4 + 2))
        assert global_grad_norm([layer]) == pytest.approx(expected)

    def test_clip_reduces_norm(self):
        layer = _layer_with_grad(10.0)
        pre = clip_gradients([layer], max_norm=1.0)
        assert pre > 1.0
        assert global_grad_norm([layer]) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        layer = _layer_with_grad(0.001)
        before = layer.grads["W"].copy()
        clip_gradients([layer], max_norm=10.0)
        np.testing.assert_array_equal(layer.grads["W"], before)


class TestSGD:
    def test_step_moves_against_gradient(self):
        layer = _layer_with_grad(1.0)
        before = layer.params["W"].copy()
        SGD([layer], lr=0.1).step()
        np.testing.assert_allclose(layer.params["W"], before - 0.1)

    def test_momentum_accumulates(self):
        layer = _layer_with_grad(1.0)
        opt = SGD([layer], lr=0.1, momentum=0.9)
        before = layer.params["W"].copy()
        opt.step()
        layer.grads["W"][...] = 1.0
        layer.grads["b"][...] = 1.0
        opt.step()
        # second step: v = 0.9*(-0.1) - 0.1 = -0.19
        np.testing.assert_allclose(layer.params["W"], before - 0.1 - 0.19)

    def test_zero_grad(self):
        layer = _layer_with_grad(1.0)
        SGD([layer]).zero_grad()
        assert np.all(layer.grads["W"] == 0)


class TestAdamUpdater:
    def test_minimizes_quadratic(self):
        """Drive a Dense layer's W toward a target by hand-fed gradients."""
        layer = Dense(1, 1, seed=1)
        target = 3.0
        opt = AdamUpdater([layer], lr=0.1)
        for _ in range(300):
            w = layer.params["W"][0, 0]
            layer.zero_grad()
            layer.grads["W"][0, 0] = 2 * (w - target)
            opt.step()
        assert layer.params["W"][0, 0] == pytest.approx(target, abs=1e-3)

    def test_bias_correction_first_step(self):
        layer = _layer_with_grad(1.0)
        before = layer.params["W"].copy()
        AdamUpdater([layer], lr=0.5).step()
        # first Adam step magnitude ~ lr regardless of gradient scale
        np.testing.assert_allclose(layer.params["W"], before - 0.5, atol=1e-6)
