"""REINFORCE machinery: baseline and trainer convergence on a toy task."""

import numpy as np
import pytest

from repro.core.alphabet import GateAlphabet
from repro.core.controller import PolicyController
from repro.ml.reinforce import MovingBaseline, ReinforceTrainer


class TestMovingBaseline:
    def test_first_update_adopts_reward(self):
        b = MovingBaseline(0.9)
        b.update(2.0)
        assert b.value == 2.0

    def test_advantage_before_update(self):
        b = MovingBaseline(0.5)
        adv1 = b.update(1.0)
        assert adv1 == 1.0  # baseline starts at 0
        adv2 = b.update(2.0)
        assert adv2 == pytest.approx(1.0)  # 2.0 - 1.0

    def test_decay_mixing(self):
        b = MovingBaseline(0.5)
        b.update(0.0)
        b.update(4.0)
        assert b.value == pytest.approx(2.0)

    def test_decay_validated(self):
        with pytest.raises(ValueError):
            MovingBaseline(1.0)


class TestReinforceTrainer:
    def test_learns_to_emit_target_token(self):
        """Reward = fraction of 'rx' tokens: the policy should converge to
        emitting mostly rx."""
        alphabet = GateAlphabet(("rx", "ry", "rz", "h", "p"))
        controller = PolicyController(alphabet, max_gates=3, allow_end=False, seed=0)

        def reward_fn(actions):
            if not actions:
                return 0.0
            return sum(1.0 for a in actions if alphabet.token(a) == "rx") / len(actions)

        trainer = ReinforceTrainer(controller, reward_fn, batch_size=8, entropy_weight=0.003)
        rng = np.random.default_rng(1)
        trainer.train(60, rng)
        early = np.mean(trainer.mean_rewards[:10])
        late = np.mean(trainer.mean_rewards[-10:])
        assert late > early + 0.2
        assert controller.greedy_episode() == ("rx", "rx", "rx")

    def test_best_reward_tracked(self):
        alphabet = GateAlphabet(("rx", "ry"))
        controller = PolicyController(alphabet, max_gates=2, allow_end=False, seed=3)
        trainer = ReinforceTrainer(
            controller, lambda actions: float(len(actions)), batch_size=4
        )
        trainer.step(np.random.default_rng(0))
        assert trainer.best_reward == 2.0
        assert trainer.best_actions is not None

    def test_mean_rewards_recorded_per_step(self):
        alphabet = GateAlphabet(("rx", "ry"))
        controller = PolicyController(alphabet, max_gates=2, seed=4)
        trainer = ReinforceTrainer(controller, lambda a: 1.0, batch_size=2)
        trainer.train(5, np.random.default_rng(2))
        assert len(trainer.mean_rewards) == 5
