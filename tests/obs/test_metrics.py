"""MetricsRegistry: families, histograms, exposition format, tracing."""

import json
import math
import threading

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFamilies:
    def test_counter_inc_and_value(self, registry):
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self, registry):
        counter = registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labeled_counter_children_are_independent(self, registry):
        counter = registry.counter("repro_t_total", labels=("tenant",))
        counter.labels(tenant="a").inc()
        counter.labels(tenant="a").inc()
        counter.labels(tenant="b").inc(5)
        assert counter.value_for(tenant="a") == 2
        assert counter.value_for(tenant="b") == 5

    def test_labeled_counter_child_rejects_negative(self, registry):
        counter = registry.counter("repro_t_total", labels=("tenant",))
        with pytest.raises(ValueError, match="only go up"):
            counter.labels(tenant="a").inc(-3)

    def test_wrong_label_names_rejected(self, registry):
        counter = registry.counter("repro_t_total", labels=("tenant",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(nope="x")

    def test_default_child_requires_no_labels(self, registry):
        counter = registry.counter("repro_t_total", labels=("tenant",))
        with pytest.raises(ValueError, match="declares labels"):
            counter.inc()

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_invalid_metric_name_rejected(self, registry):
        for bad in ("", "9starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("repro_x_total", "help")
        again = registry.counter("repro_x_total", "different help ignored")
        assert first is again

    def test_conflicting_type_raises(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_conflicting_labels_raise(self, registry):
        registry.counter("repro_x_total", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("b",))

    def test_remove_drops_one_child(self, registry):
        gauge = registry.gauge("repro_g", labels=("job",))
        gauge.labels(job="1").set(7)
        gauge.labels(job="2").set(9)
        gauge.remove(job="1")
        text = registry.render()
        assert 'repro_g{job="1"}' not in text
        assert 'repro_g{job="2"} 9' in text


class TestConcurrency:
    def test_concurrent_counter_increments_all_land(self, registry):
        counter = registry.counter("repro_c_total")
        workers, per_worker = 8, 500

        def spin():
            for _ in range(per_worker):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == workers * per_worker

    def test_concurrent_histogram_observations_all_land(self, registry):
        histogram = registry.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        workers, per_worker = 8, 300

        def spin():
            for index in range(per_worker):
                histogram.observe(0.5 if index % 2 else 1.5)

        threads = [threading.Thread(target=spin) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == workers * per_worker


class TestHistogram:
    def test_bucket_edges_are_le(self, registry):
        """A value exactly on a bound lands in that bound's bucket."""
        histogram = registry.histogram("repro_h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.1)   # == first bound -> le="0.1"
        histogram.observe(0.11)  # just past it   -> le="1"
        histogram.observe(5.0)   # beyond last    -> +Inf only
        text = registry.render()
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 2' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_h_seconds_count 3" in text

    def test_sum_and_count(self, registry):
        histogram = registry.histogram("repro_h_seconds", buckets=(1.0,))
        for value in (0.25, 0.5, 2.25):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(3.0)

    def test_bounds_are_sorted_and_inf_stripped(self, registry):
        histogram = registry.histogram(
            "repro_h_seconds", buckets=(5.0, 1.0, math.inf)
        )
        assert histogram.bounds == (1.0, 5.0)

    def test_duplicate_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="duplicate"):
            registry.histogram("repro_h_seconds", buckets=(1.0, 1.0))

    def test_empty_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("repro_h_seconds", buckets=())

    def test_quantile_interpolates_in_winning_bucket(self, registry):
        histogram = registry.histogram(
            "repro_h_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for _ in range(10):
            histogram.observe(0.5)   # all ten in (0, 1]
        # rank 5 of 10 falls halfway through the (0, 1] bucket
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        # the max is still inside the first bucket's bound
        assert histogram.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_spans_buckets(self, registry):
        histogram = registry.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)  # (0, 1]
        histogram.observe(1.5)  # (1, 2]
        histogram.observe(1.5)
        histogram.observe(1.5)
        # rank 2 of 4 -> second bucket, 1/3 of the way through (1, 2]
        assert histogram.quantile(0.5) == pytest.approx(1.0 + 1.0 / 3.0)

    def test_quantile_clamps_to_last_finite_bound(self, registry):
        histogram = registry.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        histogram.observe(100.0)  # the +Inf bucket
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_of_empty_is_nan(self, registry):
        histogram = registry.histogram("repro_h_seconds")
        assert math.isnan(histogram.quantile(0.5))

    def test_quantile_range_checked(self, registry):
        histogram = registry.histogram("repro_h_seconds")
        with pytest.raises(ValueError, match="quantile"):
            histogram.quantile(1.5)

    def test_labeled_histogram_quantile(self, registry):
        histogram = registry.histogram(
            "repro_h_seconds", labels=("tenant",), buckets=(1.0, 2.0)
        )
        histogram.labels(tenant="a").observe(0.5)
        assert histogram.quantile(1.0, tenant="a") == pytest.approx(1.0)

    def test_default_buckets_cover_cache_to_training_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 300.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExposition:
    def test_help_and_type_lines(self, registry):
        registry.counter("repro_a_total", "does a thing").inc()
        text = registry.render()
        assert "# HELP repro_a_total does a thing\n" in text
        assert "# TYPE repro_a_total counter\n" in text

    def test_families_render_sorted_and_newline_terminated(self, registry):
        registry.counter("repro_b_total").inc()
        registry.counter("repro_a_total").inc()
        text = registry.render()
        assert text.index("repro_a_total") < text.index("repro_b_total")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""

    def test_label_values_escaped(self, registry):
        counter = registry.counter("repro_l_total", labels=("key",))
        counter.labels(key='sp"am\\eggs\n').inc()
        text = registry.render()
        assert 'key="sp\\"am\\\\eggs\\n"' in text

    def test_histogram_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        lines = registry.render().splitlines()
        buckets = [line for line in lines if "_bucket" in line]
        assert buckets == [
            'repro_h_seconds_bucket{le="1"} 1',
            'repro_h_seconds_bucket{le="2"} 2',
            'repro_h_seconds_bucket{le="+Inf"} 2',
        ]

    def test_collectors_run_per_render(self, registry):
        gauge = registry.gauge("repro_uptime_seconds")
        ticks = []

        def collect():
            ticks.append(1)
            gauge.set(len(ticks))

        registry.add_collector(collect)
        registry.render()
        assert "repro_uptime_seconds 2" in registry.render()


class TestTimerAndTrace:
    def test_timer_observes_into_histogram(self, registry):
        with registry.timer("repro_span_seconds"):
            pass
        histogram = registry.histogram("repro_span_seconds")
        assert histogram.count == 1

    def test_timer_with_labels(self, registry):
        with registry.timer("repro_span_seconds", tenant="a"):
            pass
        histogram = registry.histogram(
            "repro_span_seconds", labels=("tenant",)
        )
        assert histogram.labels(tenant="a").count == 1

    def test_trace_records_timer_spans(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry.enable_trace(path)
        with registry.timer("repro_span_seconds", job="7"):
            pass
        registry.disable_trace()
        (event,) = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert event["span"] == "repro_span_seconds"
        assert event["seconds"] >= 0
        assert event["labels"] == {"job": "7"}
        assert "ts" in event

    def test_trace_event_direct_emission(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry.enable_trace(path)
        registry.trace_event("job_run", 0.25, index=3, attempt=1)
        registry.disable_trace()
        (event,) = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert event == {
            "ts": event["ts"],
            "span": "job_run",
            "seconds": 0.25,
            "labels": {"index": 3, "attempt": 1},
        }

    def test_trace_event_noop_when_disabled(self, registry):
        registry.trace_event("job_run", 0.1)  # must not raise

    def test_trace_path_property(self, registry, tmp_path):
        assert registry.trace_path is None
        registry.enable_trace(tmp_path / "t.jsonl")
        assert registry.trace_path == tmp_path / "t.jsonl"
        registry.disable_trace()
        assert registry.trace_path is None


class TestModuleSurface:
    def test_reexports(self):
        from repro import obs

        assert obs.MetricsRegistry is MetricsRegistry
        assert obs.Counter is Counter
        assert obs.Gauge is Gauge
        assert obs.Histogram is Histogram
