"""SweepProgress: monotone accounting, snapshots, gauge mirroring."""

import threading

import pytest

from repro.obs import MetricsRegistry, SweepProgress


class TestAccounting:
    def test_full_sweep_lifecycle(self):
        progress = SweepProgress()
        progress.begin_sweep(2)
        progress.begin_depth(1, total=6, cached=2)
        for _ in range(4):
            progress.record(1)
        progress.finish_depth(1)
        progress.begin_depth(2, total=6)
        progress.record(2, 6)
        progress.finish_depth(2)
        progress.finish_sweep()

        snapshot = progress.to_dict()
        assert snapshot["depths_total"] == 2
        assert snapshot["current_depth"] == 2
        assert snapshot["candidates_total"] == 12
        assert snapshot["candidates_done"] == 12
        assert snapshot["percent"] == 100.0
        assert snapshot["finished_at"] is not None
        first, second = snapshot["per_depth"]
        assert first == {
            "p": 1, "total": 6, "done": 6, "cached": 2,
            "seconds": first["seconds"],
        }
        assert first["seconds"] >= 0
        assert second["cached"] == 0

    def test_empty_sweep_is_zero_percent(self):
        snapshot = SweepProgress().to_dict()
        assert snapshot["percent"] == 0.0
        assert snapshot["candidates_total"] == 0
        assert snapshot["throughput_per_second"] >= 0.0

    def test_open_depth_reports_elapsed_seconds(self):
        progress = SweepProgress()
        progress.begin_depth(1, total=3)
        (entry,) = progress.to_dict()["per_depth"]
        assert entry["seconds"] >= 0  # live elapsed, not None

    def test_finish_sweep_is_idempotent(self):
        progress = SweepProgress()
        progress.finish_sweep()
        stamp = progress.to_dict()["finished_at"]
        progress.finish_sweep()
        assert progress.to_dict()["finished_at"] == stamp

    def test_restored_depth_counts_all_candidates_as_cached(self):
        progress = SweepProgress()
        progress.begin_depth(1, total=6, cached=6)
        progress.finish_depth(1)
        snapshot = progress.to_dict()
        assert snapshot["candidates_done"] == 6
        assert snapshot["per_depth"][0]["cached"] == 6

    def test_shard_attribution(self):
        progress = SweepProgress()
        progress.begin_depth(1, total=4)
        progress.record(1, shard=0)
        progress.record(1)
        progress.record_shard(1, 2)
        shards = progress.to_dict()["per_shard"]
        assert shards["0"]["done"] == 1
        assert shards["1"]["done"] == 2

    def test_done_is_monotone_under_concurrent_recording(self):
        progress = SweepProgress()
        progress.begin_depth(1, total=800)
        seen = []
        stop = threading.Event()

        def watch():
            while not stop.is_set():
                seen.append(progress.to_dict()["candidates_done"])

        watcher = threading.Thread(target=watch)
        watcher.start()
        threads = [
            threading.Thread(
                target=lambda: [progress.record(1) for _ in range(100)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()
        assert progress.to_dict()["candidates_done"] == 800
        assert seen == sorted(seen)  # never observed going backwards


class TestGaugeMirroring:
    def test_gauges_track_done_and_total(self):
        registry = MetricsRegistry()
        progress = SweepProgress(metrics=registry, labels={"job": "abc"})
        progress.begin_depth(1, total=5, cached=1)
        progress.record(1, 2)
        text = registry.render()
        assert 'repro_sweep_candidates_done{job="abc"} 3' in text
        assert 'repro_sweep_candidates_total{job="abc"} 5' in text

    def test_unregister_drops_the_label_children(self):
        registry = MetricsRegistry()
        progress = SweepProgress(metrics=registry, labels={"job": "abc"})
        progress.begin_depth(1, total=5)
        progress.unregister()
        assert '{job="abc"}' not in registry.render()

    def test_two_sweeps_share_the_families(self):
        registry = MetricsRegistry()
        one = SweepProgress(metrics=registry, labels={"job": "1"})
        two = SweepProgress(metrics=registry, labels={"job": "2"})
        one.begin_depth(1, total=4)
        two.begin_depth(1, total=9)
        text = registry.render()
        assert 'repro_sweep_candidates_total{job="1"} 4' in text
        assert 'repro_sweep_candidates_total{job="2"} 9' in text

    def test_unlabelled_mirroring_uses_default_child(self):
        registry = MetricsRegistry()
        progress = SweepProgress(metrics=registry)
        progress.begin_depth(1, total=3)
        progress.record(1)
        assert "repro_sweep_candidates_done 1" in registry.render()

    @pytest.mark.parametrize("records", [0, 1, 7])
    def test_snapshot_and_gauges_agree(self, records):
        registry = MetricsRegistry()
        progress = SweepProgress(metrics=registry, labels={"job": "x"})
        progress.begin_depth(1, total=10)
        for _ in range(records):
            progress.record(1)
        done = registry.gauge(
            "repro_sweep_candidates_done", labels=("job",)
        ).value_for(job="x")
        assert done == progress.to_dict()["candidates_done"] == records
