"""Batch-native optimizer stack: batched paths pinned to their serial
counterparts (same trajectories, same minima, same nfev accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import cycle_graph
from repro.optimizers import (
    BATCH_MODES,
    SPSA,
    Adam,
    BatchObjective,
    Cobyla,
    MultiRestart,
    NelderMead,
    ObjectiveTracer,
    batch_values,
    make_optimizer,
)
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy

TARGET = np.array([1.0, -2.0])


def quadratic(x):
    return float(np.sum((x - TARGET) ** 2))


def quadratic_batch(X):
    return np.array([quadratic(row) for row in X])


def quadratic_grad(x):
    return 2.0 * (x - TARGET)


def quadratic_grad_batch(X):
    return np.stack([quadratic_grad(row) for row in X])


def populations(max_dim=4, max_restarts=5):
    """Random (K, dim) start-point populations."""
    return st.integers(1, max_dim).flatmap(
        lambda dim: st.integers(1, max_restarts).flatmap(
            lambda k: st.lists(
                st.lists(
                    st.floats(-3.0, 3.0, allow_nan=False, width=32),
                    min_size=dim,
                    max_size=dim,
                ),
                min_size=k,
                max_size=k,
            )
        )
    )


def rowwise_quadratic(dim):
    target = np.arange(dim, dtype=float)

    def fn(x):
        return float(np.sum((np.asarray(x) - target) ** 2))

    def fn_batch(X):
        return np.array([fn(row) for row in X])

    return fn, fn_batch


def assert_results_match(serial, batched):
    assert len(serial) == len(batched)
    for a, b in zip(serial, batched):
        assert a.nfev == b.nfev
        assert a.nit == b.nit
        assert a.converged == b.converged
        assert a.fun == b.fun
        np.testing.assert_array_equal(a.x, b.x)
        assert a.history == b.history


class TestObjectiveTracer:
    """Regression: batched tracing counts points, never batch calls."""

    def test_batch_counts_points_not_calls(self):
        tracer = ObjectiveTracer(quadratic, quadratic_batch)
        tracer.batch(np.zeros((5, 2)))
        tracer.batch(np.ones((3, 2)))
        assert tracer.nfev == 8  # 8 points, not 2 batch calls

    def test_batch_trace_matches_serial_order(self):
        X = np.random.default_rng(0).normal(size=(7, 2))
        serial = ObjectiveTracer(quadratic)
        for row in X:
            serial(row)
        batched = ObjectiveTracer(quadratic, quadratic_batch)
        batched.batch(X)
        assert batched.nfev == serial.nfev == 7
        assert batched.trace == serial.trace
        assert batched.best == serial.best
        np.testing.assert_array_equal(batched.best_x, serial.best_x)

    def test_batch_without_batch_fn_falls_back_to_loop(self):
        tracer = ObjectiveTracer(quadratic)
        values = tracer.batch([[0.0, 0.0], [1.0, -2.0]])
        np.testing.assert_allclose(values, [5.0, 0.0])
        assert tracer.nfev == 2

    def test_batch_values_validates_shape(self):
        with pytest.raises(ValueError, match="returned 1 values for 2"):
            batch_values(quadratic, lambda X: np.zeros(1), np.zeros((2, 2)))


class TestBatchObjectiveProtocol:
    def test_ansatz_negation_satisfies_protocol(self):
        energy = AnsatzEnergy(build_qaoa_ansatz(cycle_graph(4), 1))
        assert isinstance(energy.negative_objective(), BatchObjective)

    def test_negated_values_and_gradients(self):
        energy = AnsatzEnergy(build_qaoa_ansatz(cycle_graph(4), 1))
        negated = energy.negative_objective()
        X = np.array([[0.3, 0.2], [0.1, -0.4]])
        np.testing.assert_allclose(negated.values(X), -energy.values(X))
        np.testing.assert_allclose(negated.gradients(X), -energy.gradients(X))
        value, grad = negated.value_and_gradient(X[0])
        assert value == -energy.value(X[0])
        np.testing.assert_allclose(grad, -energy.gradient(X[0]))


class TestBatchedSPSA:
    @settings(max_examples=20, deadline=None)
    @given(populations(), st.integers(0, 2**31 - 1))
    def test_matches_serial_per_restart(self, rows, seed):
        X0 = np.asarray(rows, dtype=float)
        fn, fn_batch = rowwise_quadratic(X0.shape[1])
        optimizer = SPSA(maxiter=15, seed=seed)
        serial = [optimizer.minimize(fn, x0) for x0 in X0]
        batched = optimizer.minimize_batch(fn, X0, batch_fn=fn_batch)
        assert_results_match(serial, batched)

    def test_nfev_counts_points(self):
        results = SPSA(maxiter=10, seed=0).minimize_batch(
            quadratic, np.zeros((3, 2)), batch_fn=quadratic_batch
        )
        assert [r.nfev for r in results] == [2 * 10 + 2] * 3


class TestBatchedNelderMead:
    @settings(max_examples=20, deadline=None)
    @given(populations(max_dim=3))
    def test_matches_serial_per_restart(self, rows):
        X0 = np.asarray(rows, dtype=float)
        fn, fn_batch = rowwise_quadratic(X0.shape[1])
        optimizer = NelderMead(maxiter=40)
        serial = [optimizer.minimize(fn, x0) for x0 in X0]
        batched = optimizer.minimize_batch(fn, X0, batch_fn=fn_batch)
        assert_results_match(serial, batched)

    def test_restarts_converge_independently(self):
        # One restart starts at the optimum (converges fast), one far away.
        X0 = np.vstack([TARGET, TARGET + 50.0])
        results = NelderMead(maxiter=300).minimize_batch(
            quadratic, X0, batch_fn=quadratic_batch
        )
        assert results[0].converged and results[1].converged
        assert results[0].nit < results[1].nit


class TestBatchedAdam:
    @settings(max_examples=15, deadline=None)
    @given(populations(max_dim=3, max_restarts=4))
    def test_matches_serial_per_restart(self, rows):
        X0 = np.asarray(rows, dtype=float)
        dim = X0.shape[1]
        target = np.arange(dim, dtype=float)
        fn, fn_batch = rowwise_quadratic(dim)
        optimizer = Adam(
            gradient=lambda x: 2.0 * (np.asarray(x) - target),
            gradient_batch=lambda X: 2.0 * (np.asarray(X) - target),
            maxiter=30,
            learning_rate=0.1,
            gtol=1e-3,
        )
        serial = [optimizer.minimize(fn, x0) for x0 in X0]
        batched = optimizer.minimize_batch(fn, X0, batch_fn=fn_batch)
        assert_results_match(serial, batched)

    def test_gradient_batch_shape_validated(self):
        optimizer = Adam(
            gradient=quadratic_grad,
            gradient_batch=lambda X: np.zeros((1, 1)),
            maxiter=5,
        )
        with pytest.raises(ValueError, match="gradient_batch"):
            optimizer.minimize_batch(quadratic, np.zeros((2, 2)))


class TestSerialFallback:
    def test_cobyla_population_uses_serial_minimize(self):
        X0 = np.array([[0.0, 0.0], [3.0, 3.0]])
        results = Cobyla(maxiter=60).minimize_batch(
            quadratic, X0, batch_fn=quadratic_batch
        )
        direct = [Cobyla(maxiter=60).minimize(quadratic, x0) for x0 in X0]
        assert [r.fun for r in results] == [r.fun for r in direct]
        assert not Cobyla.supports_batch


class TestMultiRestart:
    def test_returns_best_restart_and_sums_nfev(self):
        X0 = np.vstack([TARGET + 40.0, TARGET])  # second seed is the optimum
        meta = MultiRestart(NelderMead(maxiter=60))
        result = meta.minimize_population(quadratic, X0, batch_fn=quadratic_batch)
        assert result.sub_results is not None and len(result.sub_results) == 2
        assert result.fun == min(r.fun for r in result.sub_results)
        assert result.nfev == sum(r.nfev for r in result.sub_results)

    @pytest.mark.parametrize("mode", BATCH_MODES)
    def test_modes_agree_on_exact_objective(self, mode):
        X0 = np.array([[3.0, 3.0], [0.0, 0.0], [-1.0, 2.0]])
        meta = MultiRestart(SPSA(maxiter=25, seed=7), batch_mode=mode)
        result = meta.minimize_population(quadratic, X0, batch_fn=quadratic_batch)
        reference = MultiRestart(
            SPSA(maxiter=25, seed=7), batch_mode="serial"
        ).minimize_population(quadratic, X0)
        assert result.fun == reference.fun
        assert result.nfev == reference.nfev
        np.testing.assert_array_equal(result.x, reference.x)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown batch mode"):
            MultiRestart(SPSA(), batch_mode="turbo")

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MultiRestart(SPSA()).minimize_population(
                quadratic, np.empty((0, 2))
            )

    def test_minimize_single_seed(self):
        result = MultiRestart(NelderMead(maxiter=100)).minimize(
            quadratic, [3.0, 3.0]
        )
        assert result.fun < 1e-6

    def test_factory_builds_multi_restart(self):
        meta = make_optimizer("multi_restart", base=SPSA(maxiter=5, seed=0))
        assert meta.name == "multi_restart"
        assert meta.supports_batch


class TestOnCompiledEnergy:
    """Batched training on the real (compiled-engine) QAOA objective."""

    @pytest.fixture(scope="class")
    def negated(self):
        energy = AnsatzEnergy(build_qaoa_ansatz(cycle_graph(6), 2))
        return energy.negative_objective()

    def test_spsa_batched_close_to_serial(self, negated):
        # The batched engine path evaluates through states(X) instead of
        # per-point state(x); trajectories agree to float round-off, so
        # minima match to tight (not bitwise) tolerance.
        X0 = np.random.default_rng(2).uniform(-0.5, 0.5, (4, 4))
        batched = MultiRestart(
            SPSA(maxiter=30, seed=1), batch_mode="batched"
        ).minimize_population(negated, X0, batch_fn=negated.values)
        serial = MultiRestart(
            SPSA(maxiter=30, seed=1), batch_mode="serial"
        ).minimize_population(negated, X0)
        assert batched.nfev == serial.nfev
        assert batched.fun == pytest.approx(serial.fun, abs=1e-8)

    def test_adam_rides_batched_parameter_shift(self, negated):
        X0 = np.random.default_rng(3).uniform(-0.5, 0.5, (3, 4))
        optimizer = Adam(
            gradient=negated.gradient,
            gradient_batch=negated.gradients,
            maxiter=15,
            learning_rate=0.1,
        )
        results = optimizer.minimize_batch(negated, X0, batch_fn=negated.values)
        serial = [
            Adam(gradient=negated.gradient, maxiter=15, learning_rate=0.1).minimize(
                negated, x0
            )
            for x0 in X0
        ]
        for a, b in zip(serial, results):
            assert a.nfev == b.nfev
            assert a.fun == pytest.approx(b.fun, abs=1e-8)
