"""Classical optimizers on reference problems and the QAOA objective."""

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph
from repro.optimizers import SPSA, Adam, Cobyla, NelderMead, ObjectiveTracer, make_optimizer
from repro.qaoa.analytic import grid_search_p1
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy


def quadratic(x):
    return float(np.sum((x - np.array([1.0, -2.0])) ** 2))


def quadratic_grad(x):
    return 2.0 * (x - np.array([1.0, -2.0]))


def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestTracer:
    def test_counts_and_best(self):
        tracer = ObjectiveTracer(quadratic)
        tracer(np.array([0.0, 0.0]))
        tracer(np.array([1.0, -2.0]))
        tracer(np.array([5.0, 5.0]))
        assert tracer.nfev == 3
        assert tracer.best == 0.0
        np.testing.assert_array_equal(tracer.best_x, [1.0, -2.0])

    def test_trace_monotone(self):
        tracer = ObjectiveTracer(quadratic)
        rng = np.random.default_rng(0)
        for _ in range(20):
            tracer(rng.normal(size=2))
        assert all(a >= b for a, b in zip(tracer.trace, tracer.trace[1:]))


class TestCobyla:
    def test_quadratic(self):
        result = Cobyla(maxiter=200).minimize(quadratic, [0.0, 0.0])
        assert result.fun < 1e-4
        np.testing.assert_allclose(result.x, [1.0, -2.0], atol=0.05)

    def test_respects_budget(self):
        result = Cobyla(maxiter=30).minimize(quadratic, [0.0, 0.0])
        assert result.nfev <= 35  # small COBYLA bookkeeping slack

    def test_reports_best_seen_not_last(self):
        result = Cobyla(maxiter=100).minimize(rosenbrock, [-1.0, 1.0])
        assert result.fun == min(result.history)


class TestNelderMead:
    def test_quadratic(self):
        result = NelderMead(maxiter=300).minimize(quadratic, [3.0, 3.0])
        assert result.fun < 1e-6

    def test_rosenbrock(self):
        result = NelderMead(maxiter=500).minimize(rosenbrock, [-1.0, 1.0])
        assert result.fun < 1e-3

    def test_convergence_flag(self):
        result = NelderMead(maxiter=1000, fatol=1e-10, xatol=1e-10).minimize(
            quadratic, [0.5, 0.5]
        )
        assert result.converged

    def test_history_monotone(self):
        result = NelderMead(maxiter=100).minimize(quadratic, [4.0, 4.0])
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))


class TestSPSA:
    def test_quadratic_progress(self):
        result = SPSA(maxiter=200, seed=1).minimize(quadratic, [3.0, 3.0])
        assert result.fun < quadratic(np.array([3.0, 3.0])) * 0.05

    def test_reproducible_with_seed(self):
        a = SPSA(maxiter=50, seed=5).minimize(quadratic, [2.0, 2.0])
        b = SPSA(maxiter=50, seed=5).minimize(quadratic, [2.0, 2.0])
        np.testing.assert_array_equal(a.x, b.x)

    def test_noisy_objective(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return quadratic(x) + rng.normal(0, 0.05)

        result = SPSA(maxiter=300, seed=2).minimize(noisy, [3.0, 3.0])
        assert quadratic(result.x) < 0.5

    def test_two_evals_per_iteration(self):
        result = SPSA(maxiter=40, seed=0).minimize(quadratic, [1.0, 1.0])
        assert result.nfev == 2 * 40 + 2  # pairs + initial + final


class TestAdam:
    def test_quadratic_with_exact_gradient(self):
        opt = Adam(gradient=quadratic_grad, maxiter=500, learning_rate=0.1)
        result = opt.minimize(quadratic, [4.0, 4.0])
        assert result.fun < 1e-5

    def test_gtol_convergence(self):
        opt = Adam(gradient=quadratic_grad, maxiter=5000, learning_rate=0.2, gtol=1e-7)
        result = opt.minimize(quadratic, [1.5, -1.0])
        assert result.converged


class TestFactory:
    def test_known_names(self):
        assert make_optimizer("cobyla").name == "cobyla"
        assert make_optimizer("spsa", maxiter=10).maxiter == 10

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            make_optimizer("gradient_descent_9000")


class TestOnQAOAObjective:
    """All optimizers should find near-optimal p=1 angles on C6."""

    @pytest.fixture(scope="class")
    def problem(self):
        g = cycle_graph(6)
        energy = AnsatzEnergy(build_qaoa_ansatz(g, 1))
        best, _, _ = grid_search_p1(g, resolution=48)
        return energy, best

    def test_cobyla_reaches_grid_optimum(self, problem):
        energy, best = problem
        result = Cobyla(maxiter=150).minimize(energy.negative, [0.3, 0.2])
        assert -result.fun >= best * 0.98

    def test_nelder_mead_reaches_grid_optimum(self, problem):
        energy, best = problem
        result = NelderMead(maxiter=150).minimize(energy.negative, [0.3, 0.2])
        assert -result.fun >= best * 0.98

    def test_adam_with_parameter_shift(self, problem):
        energy, best = problem
        opt = Adam(gradient=lambda x: -energy.gradient(x), maxiter=60, learning_rate=0.1)
        result = opt.minimize(energy.negative, [0.3, 0.2])
        assert -result.fun >= best * 0.95
