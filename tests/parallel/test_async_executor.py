"""AsyncExecutor: the Executor contract over an asyncio dispatch plane."""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.parallel.async_executor import AsyncExecutor
from repro.parallel.executor import make_executor


def square_sum(a, b):
    return a * a + b


def boom(_):
    raise RuntimeError("worker exploded")


class TestContract:
    def test_submit_returns_future_with_result(self):
        with AsyncExecutor(2) as executor:
            future = executor.submit(square_sum, 3, 4)
            assert isinstance(future, Future)
            assert future.result(timeout=10) == 13

    def test_starmap_preserves_order(self):
        with AsyncExecutor(3) as executor:
            out = executor.starmap(square_sum, [(i, 0) for i in range(20)])
        assert out == [i * i for i in range(20)]

    def test_exception_routed_into_future(self):
        with AsyncExecutor(2) as executor:
            future = executor.submit(boom, None)
            with pytest.raises(RuntimeError, match="worker exploded"):
                future.result(timeout=10)

    def test_make_executor_knows_async(self):
        with make_executor("async", 2) as executor:
            assert executor.name == "async"
            assert executor.submit(square_sum, 2, 1).result(timeout=10) == 5

    def test_make_executor_error_lists_async(self):
        with pytest.raises(ValueError, match="async"):
            make_executor("bogus", 1)


class TestAdmission:
    def test_admission_is_unbounded_execution_is_bounded(self):
        """Hundreds of submits never block even on a 1-thread fleet."""
        release = threading.Event()
        started = threading.Event()

        def gate(_):
            started.set()
            release.wait(10)
            return "done"

        with AsyncExecutor(1) as executor:
            t0 = time.monotonic()
            futures = [executor.submit(gate, i) for i in range(200)]
            submit_seconds = time.monotonic() - t0
            assert submit_seconds < 2.0  # admission never waited on a worker
            assert started.wait(10)
            release.set()
            assert all(f.result(timeout=30) == "done" for f in futures)

    def test_concurrent_submitters_share_one_fleet(self):
        """Multiple threads driving one executor all complete correctly —
        the multiplexer's usage pattern."""
        results = {}

        def sweep(tag):
            futures = [executor.submit(square_sum, i, tag) for i in range(25)]
            results[tag] = [f.result(timeout=30) for f in futures]

        with AsyncExecutor(4) as executor:
            threads = [
                threading.Thread(target=sweep, args=(tag,)) for tag in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for tag in range(6):
            assert results[tag] == [i * i + tag for i in range(25)]


class TestCancellation:
    def test_cancel_queued_job_succeeds(self):
        """A job still waiting behind the semaphore is honestly PENDING."""
        release = threading.Event()

        def gate(_):
            release.wait(10)
            return "ran"

        with AsyncExecutor(1) as executor:
            blocker = executor.submit(gate, 0)
            queued = executor.submit(gate, 1)
            time.sleep(0.1)  # let the blocker occupy the only worker
            assert queued.cancel() is True
            release.set()
            assert blocker.result(timeout=10) == "ran"
            assert queued.cancelled()

    def test_cancel_running_job_fails(self):
        """Once a job holds a worker thread, cancel() must report failure —
        that is what drives JobScheduler's tainted flag."""
        release = threading.Event()
        started = threading.Event()

        def gate(_):
            started.set()
            release.wait(10)
            return "ran"

        with AsyncExecutor(1) as executor:
            future = executor.submit(gate, 0)
            assert started.wait(10)
            assert future.cancel() is False
            release.set()
            assert future.result(timeout=10) == "ran"


class TestLifecycle:
    def test_close_waits_for_inflight_work(self):
        with AsyncExecutor(2) as executor:
            futures = [executor.submit(square_sum, i, 0) for i in range(10)]
        # context exit closed the executor; all futures settled
        assert [f.result(timeout=0) for f in futures] == [
            i * i for i in range(10)
        ]

    def test_close_is_idempotent(self):
        executor = AsyncExecutor(1)
        executor.submit(square_sum, 1, 1).result(timeout=10)
        executor.close()
        executor.close()

    def test_submit_after_close_raises(self):
        executor = AsyncExecutor(1)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.submit(square_sum, 1, 1)
