"""Two-level cluster model."""

import numpy as np
import pytest

from repro.parallel.cluster import ClusterModel, NodeSpec, least_loaded_partition


def _outer_tasks(num_graphs, tasks_per_graph, seed=0):
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(0.1, 1.0, size=tasks_per_graph)) for _ in range(num_graphs)]


class TestLeastLoadedPartition:
    def test_covers_every_item_exactly_once(self):
        bins = least_loaded_partition([3.0, 1.0, 2.0, 5.0, 4.0], 3)
        assert len(bins) == 3
        assert sorted(i for b in bins for i in b) == list(range(5))

    def test_balances_heavy_item(self):
        """One heavy item + eight light: greedy isolates the heavy one
        where index round-robin would stack lights on top of it."""
        bins = least_loaded_partition([8.0] + [1.0] * 8, 2)
        loads = [sum(([8.0] + [1.0] * 8)[i] for i in b) for b in bins]
        assert sorted(loads) == [8.0, 8.0]

    def test_deterministic(self):
        costs = [2.0, 2.0, 1.0, 1.0, 3.0]
        assert least_loaded_partition(costs, 2) == least_loaded_partition(costs, 2)

    def test_more_bins_than_items_leaves_empties(self):
        bins = least_loaded_partition([1.0, 2.0], 4)
        assert sorted(i for b in bins for i in b) == [0, 1]
        assert sum(1 for b in bins if not b) == 2

    def test_validates_bins(self):
        with pytest.raises(ValueError):
            least_loaded_partition([1.0], 0)


class TestNodeSpec:
    def test_polaris_defaults(self):
        node = ClusterModel.polaris().node
        assert node.cores == 32
        assert node.gpus == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)


class TestTwoLevelSchedule:
    def test_single_node_single_core_sums_everything(self):
        cluster = ClusterModel(num_nodes=1, node=NodeSpec(cores=1, gpus=0))
        tasks = _outer_tasks(3, 4)
        result = cluster.schedule_two_level(tasks)
        total = sum(sum(t) for t in tasks)
        assert result.makespan == pytest.approx(total)

    def test_more_nodes_never_slower(self):
        tasks = _outer_tasks(8, 16, seed=1)
        times = []
        for nodes in (1, 2, 4):
            cluster = ClusterModel(num_nodes=nodes, node=NodeSpec(cores=8, gpus=0))
            times.append(cluster.schedule_two_level(tasks).makespan)
        assert times[0] >= times[1] >= times[2]

    def test_all_outer_tasks_assigned(self):
        cluster = ClusterModel(num_nodes=3, node=NodeSpec(cores=4, gpus=0))
        tasks = _outer_tasks(7, 5)
        result = cluster.schedule_two_level(tasks)
        assigned = sorted(i for node in result.node_assignments for i in node)
        assert assigned == list(range(7))

    def test_imbalance_metric(self):
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=4, gpus=0))
        result = cluster.schedule_two_level(_outer_tasks(4, 8, seed=2))
        assert result.imbalance >= 1.0

    def test_least_loaded_distribution_balances(self):
        """One huge graph plus small ones: greedy keeps nodes balanced
        better than round-robin would."""
        big = [10.0] * 4
        small = [[0.1] * 4 for _ in range(7)]
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=4, gpus=0))
        result = cluster.schedule_two_level([big] + small)
        # the big graph gets a node largely to itself
        assert result.imbalance < 2.0

    def test_imbalance_pins_least_loaded_behaviour(self):
        """Docstring satellite: placement is greedy least-loaded, NOT
        round-robin. Costs [4,3,3,2,1,1] split 7/7 under greedy (perfect
        balance, imbalance == 1.0) where round-robin by index would give
        8/6."""
        tasks = [[4.0], [3.0], [3.0], [2.0], [1.0], [1.0]]
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=1, gpus=0))
        result = cluster.schedule_two_level(tasks)
        assert result.imbalance == pytest.approx(1.0)
        assert max(result.node_makespans) == pytest.approx(7.0)  # not 8

    def test_gpu_offload_speeds_up(self):
        tasks = _outer_tasks(4, 32, seed=3)
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=8, gpus=4, gpu_speedup=8.0))
        without = cluster.schedule_two_level(tasks, use_gpus=False)
        with_gpu = cluster.schedule_two_level(tasks, use_gpus=True)
        assert with_gpu.makespan < without.makespan

    def test_empty_cluster_tasks(self):
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=2, gpus=0))
        result = cluster.schedule_two_level([])
        assert result.makespan == 0.0
