"""Two-level cluster model."""

import numpy as np
import pytest

from repro.parallel.cluster import ClusterModel, NodeSpec


def _outer_tasks(num_graphs, tasks_per_graph, seed=0):
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(0.1, 1.0, size=tasks_per_graph)) for _ in range(num_graphs)]


class TestNodeSpec:
    def test_polaris_defaults(self):
        node = ClusterModel.polaris().node
        assert node.cores == 32
        assert node.gpus == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)


class TestTwoLevelSchedule:
    def test_single_node_single_core_sums_everything(self):
        cluster = ClusterModel(num_nodes=1, node=NodeSpec(cores=1, gpus=0))
        tasks = _outer_tasks(3, 4)
        result = cluster.schedule_two_level(tasks)
        total = sum(sum(t) for t in tasks)
        assert result.makespan == pytest.approx(total)

    def test_more_nodes_never_slower(self):
        tasks = _outer_tasks(8, 16, seed=1)
        times = []
        for nodes in (1, 2, 4):
            cluster = ClusterModel(num_nodes=nodes, node=NodeSpec(cores=8, gpus=0))
            times.append(cluster.schedule_two_level(tasks).makespan)
        assert times[0] >= times[1] >= times[2]

    def test_all_outer_tasks_assigned(self):
        cluster = ClusterModel(num_nodes=3, node=NodeSpec(cores=4, gpus=0))
        tasks = _outer_tasks(7, 5)
        result = cluster.schedule_two_level(tasks)
        assigned = sorted(i for node in result.node_assignments for i in node)
        assert assigned == list(range(7))

    def test_imbalance_metric(self):
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=4, gpus=0))
        result = cluster.schedule_two_level(_outer_tasks(4, 8, seed=2))
        assert result.imbalance >= 1.0

    def test_least_loaded_distribution_balances(self):
        """One huge graph plus small ones: greedy keeps nodes balanced
        better than round-robin would."""
        big = [10.0] * 4
        small = [[0.1] * 4 for _ in range(7)]
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=4, gpus=0))
        result = cluster.schedule_two_level([big] + small)
        # the big graph gets a node largely to itself
        assert result.imbalance < 2.0

    def test_gpu_offload_speeds_up(self):
        tasks = _outer_tasks(4, 32, seed=3)
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=8, gpus=4, gpu_speedup=8.0))
        without = cluster.schedule_two_level(tasks, use_gpus=False)
        with_gpu = cluster.schedule_two_level(tasks, use_gpus=True)
        assert with_gpu.makespan < without.makespan

    def test_empty_cluster_tasks(self):
        cluster = ClusterModel(num_nodes=2, node=NodeSpec(cores=2, gpus=0))
        result = cluster.schedule_two_level([])
        assert result.makespan == 0.0
