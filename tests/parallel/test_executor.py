"""Executor equivalence and lifecycle."""

import multiprocessing as mp
import os
import time

import pytest

from repro.parallel.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cores,
    make_executor,
)


def square_sum(a, b):
    return a * a + b


def get_pid(_):
    return os.getpid()


_WORKER_BARRIER = None


def _install_barrier(barrier):
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier


def rendezvous_pid(_):
    """Block until another worker reaches the barrier, then report the PID.

    With a two-party barrier and a blocked first worker, the second job can
    only be executed by the *other* worker — so distinct PIDs are
    guaranteed, not just likely.
    """
    _WORKER_BARRIER.wait(timeout=30)
    return os.getpid()


def slow_square(x, delay):
    time.sleep(delay)
    return x * x


JOBS = [(i, i + 1) for i in range(10)]
EXPECTED = [i * i + i + 1 for i in range(10)]


class TestSerial:
    def test_starmap(self):
        assert SerialExecutor().starmap(square_sum, JOBS) == EXPECTED

    def test_map(self):
        assert SerialExecutor().map(lambda x: x + 1, range(5)) == [1, 2, 3, 4, 5]

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.starmap(square_sum, JOBS) == EXPECTED


class TestMultiprocessing:
    def test_results_ordered(self):
        with MultiprocessingExecutor(2) as ex:
            assert ex.starmap(square_sum, JOBS) == EXPECTED

    def test_work_spread_across_processes(self):
        # Trivial jobs can all land on whichever worker wakes first, so the
        # old 20-jobs-of-nothing version was flaky. The barrier makes the
        # spread deterministic: neither rendezvous job can finish until both
        # workers hold one.
        barrier = mp.get_context().Barrier(2)
        with MultiprocessingExecutor(
            2, initializer=_install_barrier, initargs=(barrier,)
        ) as ex:
            pids = set(ex.starmap(rendezvous_pid, [(i,) for i in range(2)]))
        assert len(pids) == 2

    def test_chunksize_does_not_change_results(self):
        with MultiprocessingExecutor(2, chunksize=4) as ex:
            assert ex.starmap(square_sum, JOBS) == EXPECTED

    def test_default_workers_from_affinity(self):
        with MultiprocessingExecutor() as ex:
            assert ex.num_workers == available_cores()

    def test_actual_speedup_on_sleep_tasks(self):
        """Real parallelism: 8 x 0.1s sleeps on 2 workers beat serial."""
        jobs = [(i, 0.1) for i in range(8)]
        start = time.perf_counter()
        SerialExecutor().starmap(slow_square, jobs)
        serial_time = time.perf_counter() - start
        with MultiprocessingExecutor(2) as ex:
            start = time.perf_counter()
            ex.starmap(slow_square, jobs)
            parallel_time = time.perf_counter() - start
        assert parallel_time < serial_time * 0.8

    def test_empty_jobs(self):
        with MultiprocessingExecutor(2) as ex:
            assert ex.starmap(square_sum, []) == []

    def test_pool_futures_refuse_cancellation(self):
        """A task handed to ``apply_async`` cannot be withdrawn, so the
        future must report running (cancel fails) — the signal the job
        scheduler uses to decide a timed-out pool must be terminated."""
        with MultiprocessingExecutor(1) as ex:
            future = ex.submit(square_sum, 2, 1)
            assert future.cancel() is False
            assert future.result(timeout=10) == 5


class TestThreads:
    def test_results_ordered(self):
        with ThreadExecutor(3) as ex:
            assert ex.starmap(square_sum, JOBS) == EXPECTED


class TestFactory:
    def test_names(self):
        assert make_executor("serial").name == "serial"
        with make_executor("threads", 2) as ex:
            assert ex.name == "threads"
        with make_executor("processes", 2) as ex:
            assert ex.name == "multiprocessing"

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("quantum")

    def test_available_cores_positive(self):
        assert available_cores() >= 1
