"""The deterministic fault harness itself: plans, injectors, seams."""

import sqlite3

import pytest

from repro.parallel.executor import ThreadExecutor
from repro.parallel.faults import (
    FaultInjectingExecutor,
    FaultInjectingJobQueue,
    FaultPlan,
    InjectedFault,
)


def double(x):
    return x * 2


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        plans = [FaultPlan(7, worker_raises=0.4) for _ in range(2)]
        draws = [[plan.should_raise() for _ in range(50)] for plan in plans]
        assert draws[0] == draws[1]
        assert any(draws[0])
        assert not all(draws[0])

    def test_streams_are_independent(self):
        """Raising one kind's rate must not shift another kind's schedule —
        otherwise chaos runs stop being comparable across configurations."""
        quiet = FaultPlan(7, worker_raises=0.4)
        noisy = FaultPlan(7, worker_raises=0.4, queue_locks=0.9)
        a = [quiet.should_raise() for _ in range(50)]
        _ = [noisy.should_lock() for _ in range(50)]
        b = [noisy.should_raise() for _ in range(50)]
        assert a == b

    def test_max_faults_caps_each_kind(self):
        plan = FaultPlan(1, worker_raises=1.0, max_faults_per_kind=3)
        fired = sum(plan.should_raise() for _ in range(10))
        assert fired == 3
        assert plan.injected["raise"] == 3
        assert plan.calls["raise"] == 10

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(1)
        assert not any(plan.should_raise() for _ in range(100))
        assert plan.injected == {"raise": 0, "hang": 0, "lock": 0}

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(0, worker_raises=1.5)
        with pytest.raises(ValueError):
            FaultPlan(0, hang_seconds=-1)


class TestFaultInjectingExecutor:
    def test_injects_raises_and_counts_real_completions(self):
        plan = FaultPlan(3, worker_raises=0.3, max_faults_per_kind=5)
        executor = FaultInjectingExecutor(ThreadExecutor(2), plan)
        faults = 0
        for i in range(20):
            try:
                assert executor.submit(double, i).result() == i * 2
            except InjectedFault:
                faults += 1
        assert faults == 5
        assert executor.completed == 15
        assert plan.injected["raise"] == 5
        executor.close()

    def test_hang_burns_time_then_produces_nothing(self):
        plan = FaultPlan(3, worker_hangs=1.0, hang_seconds=0.01, max_faults_per_kind=1)
        executor = FaultInjectingExecutor(ThreadExecutor(1), plan)
        with pytest.raises(InjectedFault, match="hang"):
            executor.submit(double, 1).result()
        assert executor.submit(double, 2).result() == 4  # cap reached: clean
        assert executor.completed == 1
        executor.close()

    def test_close_propagates_taint(self):
        inner = ThreadExecutor(1)
        executor = FaultInjectingExecutor(inner, FaultPlan(0))
        executor.tainted = True
        executor.close()
        assert inner.tainted


class TestFaultInjectingJobQueue:
    def test_init_statements_never_fault(self, tmp_path):
        # rate 1.0: every post-init statement would fail — so a successful
        # construction proves schema/migration/recovery ran clean.
        queue = FaultInjectingJobQueue(tmp_path, FaultPlan(0, queue_locks=1.0))
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            queue.submit({"depths": 1})
        queue._plan = None  # disarm to close cleanly
        queue.close()

    def test_faulted_statement_leaves_state_consistent(self, tmp_path):
        plan = FaultPlan(5, queue_locks=0.5, max_faults_per_kind=10)
        queue = FaultInjectingJobQueue(tmp_path, plan)
        submitted = 0
        for _ in range(30):
            try:
                queue.submit({"depths": 1})
                submitted += 1
            except sqlite3.OperationalError:
                pass
        queue._plan = None  # disarm so the inspection below runs clean
        # all-or-nothing: every non-faulted submit is queued, no partials
        assert queue.counts()["queued"] == submitted
        assert plan.injected["lock"] >= 1
        queue.close()
