"""Fault-tolerant job scheduler: streaming, retry, timeout, crash recovery."""

import os
import time

import pytest

from repro.parallel.executor import MultiprocessingExecutor, SerialExecutor, ThreadExecutor
from repro.parallel.jobs import JobFailedError, JobScheduler


def square_sum(a, b):
    return a * a + b


def crash_once_then_pid(flag_path):
    """Hard-kill the worker process on the first attempt (no exception, no
    callback — the pool just loses the task), succeed on the retry."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("attempted")
        os._exit(1)
    return os.getpid()


JOBS = [(i, i + 1) for i in range(10)]
EXPECTED = [i * i + i + 1 for i in range(10)]


class FlakyFunction:
    """Raises on the first ``failures`` calls per job, then succeeds."""

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = {}

    def __call__(self, index):
        count = self.calls.get(index, 0) + 1
        self.calls[index] = count
        if count <= self.failures:
            raise RuntimeError(f"transient fault on job {index} call {count}")
        return index * 10


class TestOrderedRun:
    @pytest.mark.parametrize("executor_factory", [SerialExecutor, lambda: ThreadExecutor(2)])
    def test_matches_starmap(self, executor_factory):
        with executor_factory() as executor:
            assert JobScheduler(executor).run(square_sum, JOBS) == EXPECTED

    def test_multiprocessing_matches_starmap(self):
        with MultiprocessingExecutor(2) as executor:
            assert JobScheduler(executor).run(square_sum, JOBS) == EXPECTED

    def test_empty_jobs(self):
        assert JobScheduler().run(square_sum, []) == []

    def test_default_executor_is_serial(self):
        scheduler = JobScheduler()
        assert scheduler.executor.name == "serial"
        assert scheduler.run(square_sum, JOBS) == EXPECTED


class TestStreaming:
    def test_yields_every_index_once(self):
        seen = dict(JobScheduler().as_completed(square_sum, JOBS))
        assert sorted(seen) == list(range(len(JOBS)))
        assert [seen[i] for i in range(len(JOBS))] == EXPECTED

    def test_completion_order_not_submission_order(self):
        def slow_first(delay):
            time.sleep(delay)
            return delay

        with ThreadExecutor(2) as executor:
            scheduler = JobScheduler(executor)
            order = [i for i, _ in scheduler.as_completed(slow_first, [(0.3,), (0.01,)])]
        assert order == [1, 0]


class TestRetry:
    def test_transient_failure_retried(self):
        flaky = FlakyFunction(failures=1)
        results = JobScheduler(max_retries=1).run(flaky, [(i,) for i in range(4)])
        assert results == [0, 10, 20, 30]
        assert all(count == 2 for count in flaky.calls.values())

    def test_stats_account_for_retries(self):
        flaky = FlakyFunction(failures=2)
        scheduler = JobScheduler(max_retries=2)
        scheduler.run(flaky, [(0,)])
        assert scheduler.stats.submitted == 3
        assert scheduler.stats.retried == 2
        assert scheduler.stats.completed == 1
        assert scheduler.stats.failed == 0

    def test_exhausted_retries_raise(self):
        flaky = FlakyFunction(failures=99)
        scheduler = JobScheduler(max_retries=1)
        with pytest.raises(JobFailedError, match="job 0 failed after 2"):
            scheduler.run(flaky, [(0,)])
        assert scheduler.stats.failed == 1

    def test_zero_retries_fail_fast(self):
        with pytest.raises(JobFailedError, match="after 1 attempt"):
            JobScheduler(max_retries=0).run(FlakyFunction(), [(0,)])

    def test_cause_preserved(self):
        try:
            JobScheduler(max_retries=0).run(FlakyFunction(), [(0,)])
        except JobFailedError as error:
            assert isinstance(error.cause, RuntimeError)
            assert "transient fault" in str(error.cause)
        else:  # pragma: no cover
            pytest.fail("expected JobFailedError")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            JobScheduler(max_retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            JobScheduler(timeout=0)


class TestTimeout:
    def test_slow_attempt_abandoned_and_retried(self):
        class SlowOnce:
            def __init__(self):
                self.calls = 0

            def __call__(self, value):
                self.calls += 1
                if self.calls == 1:
                    time.sleep(5.0)
                return value

        slow_once = SlowOnce()
        with ThreadExecutor(2) as executor:
            scheduler = JobScheduler(executor, max_retries=1, timeout=0.2)
            assert scheduler.run(slow_once, [(42,)]) == [42]
        assert scheduler.stats.timed_out == 1
        assert scheduler.stats.retried == 1
        assert executor.tainted  # abandoned attempt marks the pool

    def test_tainted_thread_pool_closes_promptly(self):
        def hang_forever(_):
            time.sleep(60.0)

        start = time.perf_counter()
        with ThreadExecutor(1) as executor:
            scheduler = JobScheduler(executor, max_retries=0, timeout=0.1)
            with pytest.raises(JobFailedError):
                scheduler.run(hang_forever, [(0,)])
        # close() must not join the abandoned, still-sleeping worker thread
        assert time.perf_counter() - start < 5.0

    def test_timeout_exhaustion_raises(self):
        def sleepy(_):
            time.sleep(5.0)

        with ThreadExecutor(2) as executor:
            scheduler = JobScheduler(executor, max_retries=0, timeout=0.1)
            with pytest.raises(JobFailedError) as excinfo:
                scheduler.run(sleepy, [(0,)])
        assert isinstance(excinfo.value.cause, TimeoutError)


class TestFailureDrainsFinishedWork:
    def test_successes_in_same_batch_yielded_before_raise(self):
        """Regression: when one job in a completion batch exhausts its
        retries, the other finished jobs in that batch must still be
        yielded (reach the caller's cache) before JobFailedError."""

        def poisoned_zero(index):
            if index == 0:
                raise RuntimeError("poisoned candidate")
            return index * 10

        # Serial executor: all inline futures complete in the same batch,
        # so the poisoned job and the successes land in one `done` set.
        scheduler = JobScheduler(max_retries=0)
        yielded = []
        with pytest.raises(JobFailedError, match="job 0"):
            for index, result in scheduler.as_completed(
                poisoned_zero, [(i,) for i in range(4)]
            ):
                yielded.append((index, result))
        assert sorted(yielded) == [(1, 10), (2, 20), (3, 30)]
        assert scheduler.stats.completed == 3
        assert scheduler.stats.failed == 1


class TestExpireTaint:
    def test_cancelled_queued_attempt_keeps_pool_clean(self):
        """Regression: a timed-out attempt whose future cancels cleanly
        (it never started running) must NOT taint the executor — the pool
        is still joinable."""
        with ThreadExecutor(1) as executor:
            executor.submit(time.sleep, 0.5)  # occupy the only worker
            scheduler = JobScheduler(executor, max_retries=8, timeout=0.15)
            # The job expires (repeatedly) while queued behind the sleeper;
            # each expiry cancels a not-yet-started future.
            assert scheduler.run(square_sum, [(2, 1)]) == [5]
            assert scheduler.stats.timed_out >= 1
            assert not executor.tainted

    def test_running_attempt_still_taints(self):
        def hang(_):
            time.sleep(5.0)

        with ThreadExecutor(1) as executor:
            scheduler = JobScheduler(executor, max_retries=0, timeout=0.1)
            with pytest.raises(JobFailedError):
                scheduler.run(hang, [(0,)])
            assert executor.tainted


class TestPerPassStats:
    def test_pass_stats_reset_lifetime_accumulates(self):
        flaky = FlakyFunction(failures=1)
        scheduler = JobScheduler(max_retries=1)
        scheduler.run(flaky, [(i,) for i in range(3)])
        first = scheduler.pass_stats
        assert (first.submitted, first.retried, first.completed) == (6, 3, 3)

        scheduler.run(square_sum, JOBS)
        second = scheduler.pass_stats
        # The second pass's stats describe the second pass only...
        assert (second.submitted, second.retried) == (len(JOBS), 0)
        assert second.completed == len(JOBS)
        # ...while lifetime totals keep accumulating across passes.
        assert scheduler.stats.submitted == 6 + len(JOBS)
        assert scheduler.stats.retried == 3


class TestBoundedInflight:
    def test_submissions_stream_with_results(self):
        """At most max_inflight attempts are outstanding: by the first
        yielded result, the full 10-job bag has not been enqueued."""
        scheduler = JobScheduler(max_inflight=2)
        seen_submitted = []
        for _ in scheduler.as_completed(square_sum, JOBS):
            seen_submitted.append(scheduler.stats.submitted)
        assert seen_submitted[0] == 2  # not 10: deadline clocks stay honest
        assert seen_submitted[-1] == len(JOBS)
        assert scheduler.stats.completed == len(JOBS)

    def test_default_limit_scales_with_workers(self):
        with ThreadExecutor(3) as executor:
            scheduler = JobScheduler(executor)
            assert scheduler.run(square_sum, JOBS) == EXPECTED

    def test_invalid_max_inflight_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            JobScheduler(max_inflight=0)


class TestWorkerCrash:
    def test_killed_worker_does_not_stall_the_search(self, tmp_path):
        """A worker that dies mid-job drops the task silently in
        ``multiprocessing.Pool``; the deadline + retry path must recover."""
        flag = str(tmp_path / "crashed.flag")
        with MultiprocessingExecutor(2) as executor:
            scheduler = JobScheduler(executor, max_retries=2, timeout=3.0)
            [pid] = scheduler.run(crash_once_then_pid, [(flag,)])
        assert pid > 0
        assert os.path.exists(flag)
        assert scheduler.stats.retried >= 1
