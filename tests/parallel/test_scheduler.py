"""Makespan scheduling simulation (the Fig. 5 substrate)."""

import numpy as np
import pytest

from repro.parallel.scheduler import (
    OverheadModel,
    simulate_core_sweep,
    simulate_makespan,
    speedup_curve,
)


class TestSimulateMakespan:
    def test_single_worker_sums_durations(self):
        result = simulate_makespan([1.0, 2.0, 3.0], 1)
        assert result.makespan == pytest.approx(6.0)

    def test_perfect_split(self):
        result = simulate_makespan([1.0, 1.0, 1.0, 1.0], 2)
        assert result.makespan == pytest.approx(2.0)

    def test_bounded_below_by_longest_task(self):
        result = simulate_makespan([10.0, 0.1, 0.1], 8)
        assert result.makespan == pytest.approx(10.0)

    def test_bounded_below_by_mean_load(self):
        durations = list(np.random.default_rng(0).uniform(0.5, 2.0, size=37))
        for w in (2, 4, 8):
            result = simulate_makespan(durations, w)
            assert result.makespan >= sum(durations) / w - 1e-9

    def test_monotone_in_workers(self):
        durations = list(np.random.default_rng(1).uniform(0.1, 1.0, size=50))
        times = [simulate_makespan(durations, w).makespan for w in (1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_plateau_beyond_task_count(self):
        durations = [1.0] * 4
        at4 = simulate_makespan(durations, 4).makespan
        at64 = simulate_makespan(durations, 64).makespan
        assert at4 == pytest.approx(at64)

    def test_assignments_cover_all_tasks(self):
        result = simulate_makespan([0.5] * 9, 3)
        assert len(result.assignments) == 9
        assert set(result.assignments) == {0, 1, 2}

    def test_lpt_no_worse_than_fifo_on_adversarial_bag(self):
        durations = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]  # long task last hurts FIFO
        fifo = simulate_makespan(durations[::-1], 2, policy="fifo").makespan
        lpt = simulate_makespan(durations[::-1], 2, policy="lpt").makespan
        assert lpt <= fifo

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 1, policy="sjf")

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)

    def test_empty_bag(self):
        assert simulate_makespan([], 4).makespan == 0.0


class TestOverheads:
    def test_dispatch_overhead_scales_with_tasks(self):
        base = simulate_makespan([1.0] * 10, 1).makespan
        overhead = OverheadModel(dispatch_per_task=0.1)
        with_cost = simulate_makespan([1.0] * 10, 1, overhead=overhead).makespan
        assert with_cost == pytest.approx(base + 1.0)

    def test_worker_startup_paid_once(self):
        overhead = OverheadModel(worker_startup=0.5)
        result = simulate_makespan([1.0, 1.0], 2, overhead=overhead)
        assert result.makespan == pytest.approx(1.5)

    def test_serial_fraction_adds_tail(self):
        overhead = OverheadModel(serial_fraction=0.1)
        result = simulate_makespan([1.0] * 4, 4, overhead=overhead)
        assert result.makespan == pytest.approx(1.0 + 0.4)

    def test_overheads_create_realistic_plateau(self):
        """With dispatch costs, speedup saturates below ideal (the Fig. 5
        shape)."""
        durations = [0.05] * 64
        overhead = OverheadModel(dispatch_per_task=0.01, worker_startup=0.1)
        results = simulate_core_sweep(durations, [8, 16, 32, 64], overhead=overhead)
        speedups = speedup_curve(results, serial_time=sum(durations))
        assert speedups[64] < 64 * 0.5  # far from ideal
        assert speedups[64] >= speedups[8] * 0.5  # but not collapsing


class TestSweep:
    def test_sweep_covers_all_counts(self):
        results = simulate_core_sweep([1.0] * 10, [8, 16, 24])
        assert [r.num_workers for r in results] == [8, 16, 24]

    def test_utilization_bounds(self):
        result = simulate_makespan(list(np.random.default_rng(2).uniform(0.1, 1, 20)), 4)
        assert 0.0 < result.utilization <= 1.0
