"""Timing instrumentation."""

import time

from repro.parallel.timing import Timer, TimingLog, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert t.elapsed >= 0.015

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda a, b: a + b, 2, 3)
        assert result == 5
        assert seconds >= 0.0


class TestTimingLog:
    def test_record_and_aggregate(self):
        log = TimingLog()
        log.record("train", 1.0)
        log.record("train", 3.0)
        log.record("simulate", 0.5)
        assert log.total("train") == 4.0
        assert log.mean("train") == 2.0
        assert log.total("simulate") == 0.5

    def test_missing_name_zero(self):
        log = TimingLog()
        assert log.total("nothing") == 0.0
        assert log.mean("nothing") == 0.0

    def test_summary_structure(self):
        log = TimingLog()
        log.record("a", 1.0)
        summary = log.summary()
        assert summary["a"]["count"] == 1.0
        assert summary["a"]["total"] == 1.0
