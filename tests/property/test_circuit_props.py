"""Property-based tests: circuit and gate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_REGISTRY, make_gate
from repro.circuits.transpile import simplify
from repro.simulators.statevector import circuit_unitary, simulate

ANGLES = st.floats(-2 * np.pi, 2 * np.pi, allow_nan=False, allow_infinity=False)
PARAM_GATES_1Q = st.sampled_from(["rx", "ry", "rz", "p"])
FIXED_GATES_1Q = st.sampled_from(["h", "x", "y", "z", "s", "t", "sdg", "tdg"])


@st.composite
def circuits(draw, max_qubits=4, max_gates=12):
    n = draw(st.integers(2, max_qubits))
    qc = QuantumCircuit(n)
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.integers(0, 3))
        q = draw(st.integers(0, n - 1))
        if kind == 0:
            qc.append_named(draw(FIXED_GATES_1Q), [q])
        elif kind == 1:
            qc.append_named(draw(PARAM_GATES_1Q), [q], draw(ANGLES))
        else:
            r = draw(st.integers(0, n - 2))
            r = r if r != q else n - 1
            if kind == 2:
                qc.append_named(draw(st.sampled_from(["cx", "cz", "swap"])), [q, r])
            else:
                qc.append_named(
                    draw(st.sampled_from(["rzz", "rxx", "cp"])), [q, r], draw(ANGLES)
                )
    return qc


@settings(max_examples=40, deadline=None)
@given(circuits())
def test_simulation_preserves_norm(qc):
    psi = simulate(qc)
    assert abs(np.linalg.norm(psi) - 1.0) < 1e-9


@settings(max_examples=25, deadline=None)
@given(circuits(max_qubits=3, max_gates=10))
def test_circuit_unitary_is_unitary(qc):
    u = circuit_unitary(qc)
    np.testing.assert_allclose(u @ u.conj().T, np.eye(2**qc.num_qubits), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(circuits(max_qubits=3, max_gates=10))
def test_inverse_circuit_undoes(qc):
    roundtrip = qc.compose(qc.inverse())
    psi = simulate(roundtrip)
    expected = np.zeros(2**qc.num_qubits, dtype=complex)
    expected[0] = 1.0
    np.testing.assert_allclose(psi, expected, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(circuits(max_qubits=3, max_gates=12))
def test_simplify_preserves_unitary(qc):
    np.testing.assert_allclose(
        circuit_unitary(simplify(qc)), circuit_unitary(qc), atol=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(circuits(max_qubits=3, max_gates=12))
def test_simplify_never_grows(qc):
    assert simplify(qc).size() <= qc.size()


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(sorted(GATE_REGISTRY)), st.data())
def test_every_gate_unitary_for_random_params(name, data):
    spec = GATE_REGISTRY[name]
    params = [data.draw(ANGLES) for _ in range(spec.num_params)]
    g = make_gate(name, *params)
    m = g.matrix()
    dim = 2**spec.num_qubits
    np.testing.assert_allclose(m @ m.conj().T, np.eye(dim), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(["rx", "ry", "rz", "p", "rzz", "rxx", "cp"]), ANGLES, ANGLES)
def test_rotation_angles_add(name, a, b):
    """R(a) R(b) = R(a+b) for all rotation families."""
    g_ab = make_gate(name, a).matrix() @ make_gate(name, b).matrix()
    g_sum = make_gate(name, a + b).matrix()
    np.testing.assert_allclose(g_ab, g_sum, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(circuits(max_qubits=3, max_gates=8))
def test_depth_at_most_size(qc):
    assert qc.depth() <= qc.size()
    if qc.size():
        assert qc.depth() >= 1
