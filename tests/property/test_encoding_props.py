"""Property-based tests: encodings, expressions, scheduling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.parameters import Parameter
from repro.core.alphabet import GateAlphabet
from repro.core.encoding import decode_encoding, encode_sequence, is_valid_encoding
from repro.parallel.scheduler import OverheadModel, simulate_makespan

ALPHABET = GateAlphabet()
TOKENS = st.sampled_from(ALPHABET.tokens)


@settings(max_examples=50, deadline=None)
@given(st.lists(TOKENS, min_size=1, max_size=4))
def test_encoding_roundtrip(tokens):
    enc = encode_sequence(tokens, ALPHABET, 4)
    assert is_valid_encoding(enc, ALPHABET)
    assert decode_encoding(enc, ALPHABET) == tuple(tokens)


@settings(max_examples=50, deadline=None)
@given(st.lists(TOKENS, min_size=1, max_size=4))
def test_encoding_is_one_hot(tokens):
    enc = encode_sequence(tokens, ALPHABET, 4)
    assert enc.shape == (4, 6)
    np.testing.assert_array_equal(enc.sum(axis=1), np.ones(4))
    assert set(np.unique(enc)) <= {0.0, 1.0}


FLOATS = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(FLOATS, FLOATS, FLOATS)
def test_parameter_expression_linearity(a, b, value):
    p = Parameter("p")
    expr = a * p + b
    assert abs(expr.bind({p: value}).constant_value() - (a * value + b)) < 1e-6 * max(
        1.0, abs(a * value + b)
    )


@settings(max_examples=50, deadline=None)
@given(FLOATS, FLOATS)
def test_expression_algebra_commutes_with_binding(a, b):
    p, q = Parameter("p"), Parameter("q")
    expr = 2 * p - q / 2 + 1
    bound_then_add = expr.bind({p: a}).bind({q: b}).constant_value()
    all_at_once = expr.bind({p: a, q: b}).constant_value()
    assert bound_then_add == all_at_once


DURATIONS = st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1, max_size=40)


@settings(max_examples=50, deadline=None)
@given(DURATIONS, st.integers(1, 32))
def test_makespan_lower_bounds(durations, workers):
    result = simulate_makespan(durations, workers)
    assert result.makespan >= max(durations) - 1e-12
    assert result.makespan >= sum(durations) / workers - 1e-9
    assert result.makespan <= sum(durations) + 1e-9


@settings(max_examples=50, deadline=None)
@given(DURATIONS, st.integers(1, 16), st.integers(1, 16))
def test_makespan_monotone_in_workers(durations, w1, w2):
    lo, hi = min(w1, w2), max(w1, w2)
    t_lo = simulate_makespan(durations, lo).makespan
    t_hi = simulate_makespan(durations, hi).makespan
    assert t_hi <= t_lo + 1e-9


@settings(max_examples=30, deadline=None)
@given(DURATIONS, st.integers(1, 8), st.floats(0, 0.5, allow_nan=False))
def test_overhead_never_speeds_up(durations, workers, dispatch):
    clean = simulate_makespan(durations, workers).makespan
    loaded = simulate_makespan(
        durations, workers, overhead=OverheadModel(dispatch_per_task=dispatch)
    ).makespan
    assert loaded >= clean - 1e-12
