"""Property-based tests: graphs, max-cut, and QAOA energy bounds."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import Graph, erdos_renyi_graph, random_regular_graph
from repro.qaoa.analytic import maxcut_energy_p1
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.maxcut import brute_force_maxcut, cut_value, greedy_maxcut
from repro.simulators.expectation import cut_values


@st.composite
def graphs(draw, max_nodes=8):
    n = draw(st.integers(2, max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    edges = tuple(e for e, keep in zip(possible, mask) if keep)
    return Graph(n, edges)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_cut_values_bounds(g):
    values = cut_values(g)
    assert values.min() >= 0.0
    assert values.max() <= g.total_weight() + 1e-12
    assert values[0] == 0.0  # empty cut


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_cut_complement_symmetry(g):
    """Flipping every node leaves the cut unchanged."""
    values = cut_values(g)
    full = 2**g.num_nodes - 1
    flipped = values[[i ^ full for i in range(2**g.num_nodes)]]
    np.testing.assert_array_equal(values, flipped)


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=7))
def test_bruteforce_dominates_greedy(g):
    opt = brute_force_maxcut(g)
    heur = greedy_maxcut(g, seed=0)
    assert opt.value >= heur.value - 1e-12


@settings(max_examples=30, deadline=None)
@given(graphs(max_nodes=7), st.integers(0, 100))
def test_bruteforce_dominates_random_assignment(g, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 2, g.num_nodes)
    assert brute_force_maxcut(g).value >= cut_value(g, assignment) - 1e-12


@settings(max_examples=20, deadline=None)
@given(
    graphs(max_nodes=6),
    st.floats(-2, 2, allow_nan=False),
    st.floats(-1, 1, allow_nan=False),
)
def test_qaoa_energy_bounded_by_optimum(g, gamma, beta):
    """<C> can never exceed the classical optimum (Eq. 3 ratio <= 1)."""
    assume(g.num_edges > 0)
    energy = AnsatzEnergy(build_qaoa_ansatz(g, 1)).value([gamma, beta])
    assert energy <= brute_force_maxcut(g).value + 1e-9
    assert energy >= -1e-9


@settings(max_examples=20, deadline=None)
@given(
    graphs(max_nodes=6),
    st.floats(-2, 2, allow_nan=False),
    st.floats(-1, 1, allow_nan=False),
)
def test_analytic_formula_matches_simulator_everywhere(g, gamma, beta):
    sim = AnsatzEnergy(build_qaoa_ansatz(g, 1)).value([gamma, beta])
    closed = maxcut_energy_p1(g, gamma, beta)
    assert abs(sim - closed) < 1e-8


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 12), st.integers(0, 500))
def test_er_graphs_always_simple(n, seed):
    g = erdos_renyi_graph(n, 0.5, seed=seed)
    assert all(u != v for u, v in g.edges)
    assert len(set(g.edges)) == g.num_edges


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300))
def test_regular_graphs_exactly_regular(seed):
    g = random_regular_graph(10, 4, seed=seed)
    degrees = g.degrees()
    assert np.all(degrees == 4)
