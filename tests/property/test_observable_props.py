"""Property-based tests: Pauli-sum observables and VQE invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from tests.property.test_circuit_props import circuits

from repro.qaoa.observables import PauliSum, PauliTerm, ising_hamiltonian, qubo_to_ising
from repro.simulators.statevector import simulate

PAULI_CHARS = st.sampled_from("IXYZ")
COEFFS = st.floats(-5, 5, allow_nan=False, allow_infinity=False)


@st.composite
def pauli_sums(draw, num_qubits=3, max_terms=4):
    terms = []
    for _ in range(draw(st.integers(1, max_terms))):
        pauli = "".join(draw(PAULI_CHARS) for _ in range(num_qubits))
        terms.append(PauliTerm(pauli, draw(COEFFS)))
    return PauliSum(terms)


@settings(max_examples=25, deadline=None)
@given(pauli_sums(), circuits(max_qubits=3, max_gates=8))
def test_expectation_matches_dense_matrix(H, qc):
    if qc.num_qubits != 3:
        return
    psi = simulate(qc)
    direct = H.expectation(psi)
    via_matrix = float(np.real(psi.conj() @ H.matrix() @ psi))
    assert abs(direct - via_matrix) < 1e-8


@settings(max_examples=30, deadline=None)
@given(pauli_sums())
def test_expectation_bounded_by_spectrum(H):
    eigs = np.linalg.eigvalsh(H.matrix())
    rng = np.random.default_rng(0)
    psi = rng.normal(size=8) + 1j * rng.normal(size=8)
    psi /= np.linalg.norm(psi)
    value = H.expectation(psi)
    assert eigs.min() - 1e-8 <= value <= eigs.max() + 1e-8


@settings(max_examples=30, deadline=None)
@given(pauli_sums())
def test_ground_energy_is_spectral_minimum(H):
    assert abs(H.ground_energy() - float(np.linalg.eigvalsh(H.matrix()).min())) < 1e-8


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 5), st.data())
def test_ising_diagonal_matches_classical_energy(n, data):
    couplings = {}
    for i in range(n):
        for j in range(i + 1, n):
            if data.draw(st.booleans()):
                couplings[(i, j)] = data.draw(COEFFS)
    fields = {i: data.draw(COEFFS) for i in range(n) if data.draw(st.booleans())}
    H = ising_hamiltonian(n, couplings, fields)
    diag = H.diagonal()
    for z_int in data.draw(
        st.lists(st.integers(0, 2**n - 1), min_size=1, max_size=4)
    ):
        z = 1.0 - 2.0 * np.array([(z_int >> k) & 1 for k in range(n)])
        classical = sum(v * z[i] * z[j] for (i, j), v in couplings.items())
        classical += sum(h * z[i] for i, h in fields.items())
        assert abs(diag[z_int] - classical) < 1e-8


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 4), st.integers(0, 1000))
def test_qubo_roundtrip_random_matrices(n, seed):
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(n, n))
    H = qubo_to_ising(Q)
    diag = H.diagonal()
    sym = (Q + Q.T) / 2
    for x_int in range(2**n):
        x = np.array([(x_int >> k) & 1 for k in range(n)], dtype=float)
        assert abs(diag[x_int] - float(x @ sym @ x)) < 1e-8
