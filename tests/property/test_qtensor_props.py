"""Property-based tests: tensor-network engine vs dense simulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from tests.property.test_circuit_props import circuits

from repro.qtensor.contraction import choose_slice_vars, contract_network, contract_sliced
from repro.qtensor.network import TensorNetwork
from repro.qtensor.ordering import order_for_tensors
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.statevector import simulate


@settings(max_examples=20, deadline=None)
@given(circuits(max_qubits=3, max_gates=10), st.integers(0, 7))
def test_amplitudes_match_dense(qc, bitstring):
    bitstring = bitstring % (2**qc.num_qubits)
    psi = simulate(qc)
    amp = QTensorSimulator().amplitude(qc, bitstring)
    assert abs(amp - complex(psi[bitstring])) < 1e-8


@settings(max_examples=15, deadline=None)
@given(circuits(max_qubits=3, max_gates=10))
def test_statevector_matches_dense(qc):
    np.testing.assert_allclose(
        QTensorSimulator().statevector(qc), simulate(qc), atol=1e-8
    )


@settings(max_examples=15, deadline=None)
@given(circuits(max_qubits=3, max_gates=8), st.integers(0, 4))
def test_elimination_order_invariance(qc, seed):
    """Any heuristic/random order contracts to the same amplitude."""
    net = TensorNetwork.from_circuit(qc, output_bitstring=0)
    reference = complex(contract_network(net, method="min_fill"))
    shuffled = complex(contract_network(net, method="random", seed=seed))
    assert abs(reference - shuffled) < 1e-8


@settings(max_examples=10, deadline=None)
@given(circuits(max_qubits=3, max_gates=8), st.integers(1, 2))
def test_sliced_contraction_invariance(qc, num_slices):
    net = TensorNetwork.from_circuit(qc, output_bitstring=0)
    direct = complex(contract_network(net))
    slice_vars = choose_slice_vars(net.tensors, num_slices)
    sliced = contract_sliced(net, slice_vars)
    assert abs(direct - sliced) < 1e-8


@settings(max_examples=15, deadline=None)
@given(circuits(max_qubits=3, max_gates=10))
def test_width_positive_and_bounded(qc):
    net = TensorNetwork.from_circuit(qc, output_bitstring=0)
    order = order_for_tensors(net.tensors)
    num_vars = len(net.all_vars())
    if num_vars:
        assert 1 <= order.width <= num_vars
