"""Property-based tests: workload objective tables on random weighted graphs.

Every workload's ``objective_values`` is a claim about all ``2^n``
bitstrings at once; these properties pin the invariants that must hold for
*any* weighted instance, not just the pinned paper datasets — the piece of
satellite coverage that seeded example tests cannot give.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import Graph
from repro.simulators.expectation import bit_table
from repro.workloads import clause_signs, get_workload


@st.composite
def weighted_graphs(draw, min_weight=0.1, max_weight=2.0, allow_negative=False):
    n = draw(st.integers(2, 6))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), min_size=1, max_size=len(all_pairs), unique=True)
    )
    low = -max_weight if allow_negative else min_weight
    weights = draw(
        st.lists(
            st.floats(low, max_weight, allow_nan=False, allow_infinity=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return Graph(n, tuple(sorted(chosen)), tuple(weights))


class TestWeightedMaxCutProperties:
    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_table_matches_naive_cut(self, graph):
        table = get_workload("wmaxcut").objective_values(graph)
        bits = bit_table(graph.num_nodes)
        idx = len(table) // 3
        naive = sum(
            w
            for (u, v), w in zip(graph.edges, graph.weights)
            if bits[idx, u] != bits[idx, v]
        )
        assert table[idx] == np.float64(naive) or abs(table[idx] - naive) < 1e-9

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_cut_bounds_and_empty_cut(self, graph):
        table = get_workload("wmaxcut").objective_values(graph)
        assert table[0] == 0.0  # all nodes on one side cuts nothing
        assert table.max() <= sum(graph.weights) + 1e-9
        assert table.min() >= -1e-9

    @given(weighted_graphs(), st.floats(0.1, 3.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_objective_is_linear_in_the_weights(self, graph, scale):
        problem = get_workload("wmaxcut")
        base = problem.objective_values(graph)
        scaled_graph = Graph(
            graph.num_nodes, graph.edges, tuple(scale * w for w in graph.weights)
        )
        np.testing.assert_allclose(
            problem.objective_values(scaled_graph), scale * base, atol=1e-9
        )

    @given(weighted_graphs())
    @settings(max_examples=25, deadline=None)
    def test_optimum_is_the_table_max(self, graph):
        problem = get_workload("wmaxcut")
        assert problem.classical_optimum(graph) == float(
            np.max(problem.objective_values(graph))
        )


class TestMaxSatProperties:
    @given(weighted_graphs(min_weight=0.1))
    @settings(max_examples=40, deadline=None)
    def test_satisfied_weight_bounds(self, graph):
        table = get_workload("maxsat").objective_values(graph)
        total = sum(graph.weights)
        assert table.min() >= -1e-9
        assert table.max() <= total + 1e-9
        # each 2-clause is satisfied by 3 of 4 assignments, so the mean
        # satisfied weight over all bitstrings is exactly 3/4 of the total
        assert abs(table.mean() - 0.75 * total) < 1e-9

    @given(weighted_graphs(min_weight=0.1))
    @settings(max_examples=40, deadline=None)
    def test_table_agrees_with_clause_semantics(self, graph):
        table = get_workload("maxsat").objective_values(graph)
        bits = bit_table(graph.num_nodes)
        idx = len(table) - 1
        naive = 0.0
        for (u, v), w in zip(graph.edges, graph.weights):
            s_u, s_v = clause_signs(u, v)
            lit_u = bool(bits[idx, u]) if s_u > 0 else not bits[idx, u]
            lit_v = bool(bits[idx, v]) if s_v > 0 else not bits[idx, v]
            if lit_u or lit_v:
                naive += w
        assert abs(table[idx] - naive) < 1e-9


class TestIsingProperties:
    @given(weighted_graphs(allow_negative=True))
    @settings(max_examples=40, deadline=None)
    def test_global_spin_flip_symmetry(self, graph):
        table = get_workload("ising").objective_values(graph)
        flipped = 2**graph.num_nodes - 1 - np.arange(2**graph.num_nodes)
        np.testing.assert_allclose(table, table[flipped], atol=1e-9)

    @given(weighted_graphs(allow_negative=True))
    @settings(max_examples=40, deadline=None)
    def test_energy_bounded_by_total_coupling(self, graph):
        table = get_workload("ising").objective_values(graph)
        bound = sum(abs(w) for w in graph.weights)
        assert np.all(np.abs(table) <= bound + 1e-9)

    @given(weighted_graphs(allow_negative=True))
    @settings(max_examples=25, deadline=None)
    def test_ground_state_energy_nonnegative(self, graph):
        # sum over the pair (x, ~x) is constant, and each term's sign flips
        # with any single coupling's dominant spin choice: max(-H) >= 0
        # because table mean is 0 (every z_u z_v averages to 0)
        table = get_workload("ising").objective_values(graph)
        assert abs(table.mean()) < 1e-9
        assert table.max() >= -1e-9
