"""The p=1 closed form is an exact oracle for both engines."""

import itertools

import numpy as np
import pytest

from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.qaoa.analytic import edge_energy_p1, grid_search_p1, maxcut_energy_p1
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qtensor.simulator import QTensorSimulator

GAMMAS = np.linspace(-2.0, 2.0, 4)
BETAS = np.linspace(-1.0, 1.0, 4)


@pytest.mark.parametrize(
    "graph",
    [
        cycle_graph(5),
        cycle_graph(6),
        complete_graph(4),
        path_graph(4),
        star_graph(5),
        erdos_renyi_graph(6, 0.5, seed=17),
        random_regular_graph(6, 3, seed=8),
    ],
    ids=["C5", "C6", "K4", "P4", "star5", "ER6", "RR6"],
)
def test_statevector_matches_closed_form(graph):
    energy = AnsatzEnergy(build_qaoa_ansatz(graph, 1))
    for gamma, beta in itertools.product(GAMMAS, BETAS):
        assert energy.value([gamma, beta]) == pytest.approx(
            maxcut_energy_p1(graph, gamma, beta), abs=1e-9
        )


def test_qtensor_matches_closed_form():
    graph = random_regular_graph(8, 3, seed=3)
    sim = QTensorSimulator()
    ansatz = build_qaoa_ansatz(graph, 1)
    for gamma, beta in [(0.4, 0.7), (-1.1, 0.3)]:
        bound = ansatz.bind([gamma, beta])
        assert sim.maxcut_energy(bound, graph, initial_state="0") == pytest.approx(
            maxcut_energy_p1(graph, gamma, beta), abs=1e-9
        )


class TestEdgeTerm:
    def test_zero_angles_half(self):
        g = cycle_graph(5)
        assert edge_energy_p1(g, 0, 1, 0.0, 0.0) == pytest.approx(0.5)

    def test_weighted_graph_rejected(self):
        g = Graph(2, ((0, 1),), (2.0,))
        with pytest.raises(ValueError, match="unweighted"):
            edge_energy_p1(g, 0, 1, 0.1, 0.1)

    def test_triangle_term_active_on_k3(self):
        """K3 edges share a common neighbour; the lambda term must matter."""
        k3 = complete_graph(3)
        c4 = cycle_graph(4)  # no triangles
        gamma, beta = 0.7, 0.4
        tri = edge_energy_p1(k3, 0, 1, gamma, beta)
        # same degrees (2), no triangles -> different energy
        no_tri = edge_energy_p1(c4, 0, 1, gamma, beta)
        assert tri != pytest.approx(no_tri)


class TestGridSearch:
    def test_grid_beats_random_guess(self):
        g = cycle_graph(6)
        best_e, best_g, best_b = grid_search_p1(g, resolution=32)
        assert best_e > maxcut_energy_p1(g, 0.123, 0.456)

    def test_even_cycle_p1_known_quality(self):
        """p=1 QAOA on large even cycles approaches ratio 3/4."""
        g = cycle_graph(8)
        best_e, _, _ = grid_search_p1(g, resolution=48)
        assert best_e / 8.0 == pytest.approx(0.75, abs=0.02)

    def test_returned_angles_achieve_energy(self):
        g = random_regular_graph(6, 3, seed=1)
        best_e, gamma, beta = grid_search_p1(g, resolution=32)
        assert maxcut_energy_p1(g, gamma, beta) == pytest.approx(best_e)
