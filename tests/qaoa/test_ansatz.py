"""QAOA ansatz construction (Eq. 2) and mixer layers."""

import numpy as np
import pytest

from repro.circuits.parameters import Parameter
from repro.graphs.generators import Graph, cycle_graph, path_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.cost_operator import cost_layer
from repro.qaoa.mixers import append_mixer_layer, baseline_mixer, mixer_label, mixer_layer
from repro.simulators.statevector import plus_state, simulate


class TestCostLayer:
    def test_one_rzz_per_edge(self):
        g = cycle_graph(5)
        layer = cost_layer(g, 0.3)
        assert layer.count_ops() == {"rzz": 5}

    def test_weights_scale_angles(self):
        g = Graph(2, ((0, 1),), (2.0,))
        layer = cost_layer(g, Parameter("gamma"))
        gamma = next(iter(layer.parameters))
        bound = layer.bind_parameters({gamma: 0.5})
        assert bound.instructions[0].gate.params[0] == pytest.approx(-1.0)

    def test_diagonal_phase_only(self):
        """Cost layer acts diagonally: |+>^n probabilities unchanged."""
        g = cycle_graph(4)
        psi = simulate(cost_layer(g, 0.7), plus_state(4))
        np.testing.assert_allclose(np.abs(psi) ** 2, np.full(16, 1 / 16), atol=1e-12)


class TestMixerLayers:
    def test_baseline_is_rx_on_all(self):
        m = baseline_mixer(4, Parameter("beta"))
        assert m.count_ops() == {"rx": 4}

    def test_shared_parameter(self):
        beta = Parameter("beta")
        m = mixer_layer(5, ("rx", "ry"), beta)
        assert m.parameters == frozenset({beta})

    def test_angle_is_two_beta(self):
        beta = Parameter("beta")
        m = mixer_layer(2, ("ry",), beta)
        bound = m.bind_parameters({beta: 0.4})
        assert bound.instructions[0].gate.params[0] == pytest.approx(0.8)

    def test_h_token_has_no_parameter(self):
        m = mixer_layer(3, ("h",), Parameter("beta"))
        assert not m.parameters

    def test_gate_major_ordering(self):
        """Fig. 6 layout: all RX first, then all RY."""
        m = mixer_layer(3, ("rx", "ry"), Parameter("b"))
        names = [i.gate.name for i in m]
        assert names == ["rx", "rx", "rx", "ry", "ry", "ry"]

    def test_entangler_ring(self):
        m = mixer_layer(4, ("cz_ring",), Parameter("b"))
        assert m.count_ops() == {"cz": 4}
        assert (0, 1) in m.two_qubit_interactions()
        assert (0, 3) in m.two_qubit_interactions()

    def test_unknown_token(self):
        with pytest.raises(ValueError, match="unknown mixer token"):
            mixer_layer(2, ("warp",), Parameter("b"))

    def test_mixer_label_format(self):
        assert mixer_label(("rx", "ry")) == "('rx', 'ry')"

    def test_qubit_subset(self):
        from repro.circuits.circuit import QuantumCircuit

        qc = QuantumCircuit(4)
        append_mixer_layer(qc, ("rx",), Parameter("b"), qubits=[1, 3])
        assert {i.qubits[0] for i in qc} == {1, 3}


class TestAnsatz:
    def test_parameter_count_is_2p(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 3)
        assert ansatz.num_parameters == 6
        assert ansatz.p == 3

    def test_parameter_order_gammas_then_betas(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 2)
        names = [p.name for p in ansatz.parameters]
        assert names == ["gamma_0", "gamma_1", "beta_0", "beta_1"]

    def test_layer_structure(self):
        g = path_graph(3)
        ansatz = build_qaoa_ansatz(g, 2, ("rx",))
        ops = ansatz.circuit.count_ops()
        assert ops["h"] == 3  # initial layer
        assert ops["rzz"] == 2 * g.num_edges
        assert ops["rx"] == 2 * 3

    def test_no_initial_hadamard_option(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 1, initial_hadamard=False)
        assert "h" not in ansatz.circuit.count_ops()
        assert ansatz.initial_state_label == "+"

    def test_hadamard_and_plus_start_equivalent(self):
        g = cycle_graph(4)
        x = [0.4, -0.3]
        with_h = build_qaoa_ansatz(g, 1)
        without = build_qaoa_ansatz(g, 1, initial_hadamard=False)
        psi_h = simulate(with_h.bind(x))
        psi_plus = simulate(without.bind(x), plus_state(4))
        np.testing.assert_allclose(psi_h, psi_plus, atol=1e-12)

    def test_bind_length_validated(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 2)
        with pytest.raises(ValueError, match="expected 4"):
            ansatz.bind([0.1, 0.2, 0.3])

    def test_bind_produces_concrete_circuit(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 1, ("rx", "ry"))
        bound = ansatz.bind([0.5, 0.25])
        assert not bound.parameters

    def test_zero_parameters_give_plus_state(self):
        """gamma = beta = 0: the ansatz is the identity on |+>^n."""
        g = cycle_graph(5)
        ansatz = build_qaoa_ansatz(g, 2)
        psi = simulate(ansatz.bind([0, 0, 0, 0]))
        np.testing.assert_allclose(np.abs(psi), np.abs(plus_state(5)), atol=1e-12)

    def test_depth_one_rejected_p_zero(self):
        with pytest.raises(ValueError):
            build_qaoa_ansatz(cycle_graph(4), 0)

    def test_mixer_tokens_recorded(self):
        ansatz = build_qaoa_ansatz(cycle_graph(4), 1, ("ry", "p"))
        assert ansatz.mixer_tokens == ("ry", "p")
