"""AnsatzEnergy: values, gradients, engine agreement."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy


@pytest.fixture(scope="module")
def er6():
    return erdos_renyi_graph(6, 0.5, seed=21, require_connected=True)


class TestValue:
    def test_zero_angles_give_half_total_weight(self, er6):
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        assert energy.value([0.0, 0.0]) == pytest.approx(er6.total_weight() / 2)

    def test_callable_interface(self, er6):
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        assert energy([0.1, 0.2]) == energy.value([0.1, 0.2])

    def test_negative_is_minus_value(self, er6):
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        assert energy.negative([0.3, 0.4]) == -energy.value([0.3, 0.4])

    def test_evaluation_counter(self, er6):
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        energy.value([0.1, 0.1])
        energy.value([0.2, 0.2])
        assert energy.num_evaluations == 2

    def test_unknown_engine(self, er6):
        with pytest.raises(ValueError):
            AnsatzEnergy(build_qaoa_ansatz(er6, 1), engine="abacus")

    def test_qtensor_engine_agrees(self, er6):
        ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
        sv = AnsatzEnergy(ansatz, engine="statevector")
        tn = AnsatzEnergy(ansatz, engine="qtensor")
        x = [0.3, -0.2, 0.5, 0.1]
        assert tn.value(x) == pytest.approx(sv.value(x), abs=1e-9)

    def test_default_engine_is_compiled_and_agrees(self, er6):
        ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
        default = AnsatzEnergy(ansatz)
        sv = AnsatzEnergy(ansatz, engine="statevector")
        assert default.engine == "compiled"
        x = [0.3, -0.2, 0.5, 0.1]
        assert default.value(x) == pytest.approx(sv.value(x), abs=1e-10)

    def test_values_batch_matches_loop(self, er6):
        ansatz = build_qaoa_ansatz(er6, 1)
        energy = AnsatzEnergy(ansatz)
        X = np.array([[0.1, 0.2], [0.5, -0.3], [0.0, 0.0]])
        batched = energy.values(X)
        np.testing.assert_allclose(batched, [energy.value(row) for row in X])
        assert energy.num_evaluations == 6  # 3 batched + 3 single

    def test_plus_start_engine_agreement(self, er6):
        ansatz = build_qaoa_ansatz(er6, 1, initial_hadamard=False)
        sv = AnsatzEnergy(ansatz, engine="statevector")
        tn = AnsatzEnergy(ansatz, engine="qtensor")
        assert tn.value([0.4, 0.3]) == pytest.approx(sv.value([0.4, 0.3]), abs=1e-9)


class TestGradient:
    @pytest.mark.parametrize("tokens", [("rx",), ("rx", "ry"), ("ry", "p")])
    def test_matches_finite_differences(self, er6, tokens):
        ansatz = build_qaoa_ansatz(er6, 1, tokens)
        energy = AnsatzEnergy(ansatz)
        x = np.array([0.37, -0.61])
        grad = energy.gradient(x)
        eps = 1e-6
        for j in range(2):
            e = np.zeros(2)
            e[j] = eps
            fd = (energy.value(x + e) - energy.value(x - e)) / (2 * eps)
            assert grad[j] == pytest.approx(fd, abs=1e-5)

    def test_p2_gradient(self, er6):
        ansatz = build_qaoa_ansatz(er6, 2)
        energy = AnsatzEnergy(ansatz)
        x = np.array([0.2, -0.4, 0.6, 0.1])
        grad = energy.gradient(x)
        eps = 1e-6
        fd = np.array([
            (energy.value(x + eps * np.eye(4)[j]) - energy.value(x - eps * np.eye(4)[j]))
            / (2 * eps)
            for j in range(4)
        ])
        np.testing.assert_allclose(grad, fd, atol=1e-5)

    def test_gradient_zero_at_symmetric_point(self, er6):
        """At gamma=0 the energy is stationary in beta (state stays |+>^n)."""
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        grad = energy.gradient([0.0, 0.0])
        assert grad[1] == pytest.approx(0.0, abs=1e-10)

    def test_value_and_gradient(self, er6):
        energy = AnsatzEnergy(build_qaoa_ansatz(er6, 1))
        v, g = energy.value_and_gradient([0.3, 0.3])
        assert v == pytest.approx(energy.value([0.3, 0.3]))
        np.testing.assert_allclose(g, energy.gradient([0.3, 0.3]))

    def test_h_mixer_has_no_gradient_path(self, er6):
        """An all-H mixer leaves only gamma gradients."""
        ansatz = build_qaoa_ansatz(er6, 1, ("h",))
        energy = AnsatzEnergy(ansatz)
        grad = energy.gradient([0.5, 0.5])
        assert grad.shape == (2,)
        assert grad[1] == 0.0  # beta unused by the mixer
