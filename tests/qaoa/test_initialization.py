"""Parameter-initialization strategies."""

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.initialization import interp_init, make_initializer, ramp_init, uniform_init


class TestUniform:
    def test_shape_and_range(self):
        x = uniform_init(3, scale=0.4, rng=np.random.default_rng(0))
        assert x.shape == (6,)
        assert np.all(np.abs(x) <= 0.4)

    def test_seeded(self):
        a = uniform_init(2, rng=np.random.default_rng(1))
        b = uniform_init(2, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestRamp:
    def test_gammas_increase_betas_decrease(self):
        x = ramp_init(4)
        gammas, betas = x[:4], x[4:]
        assert np.all(np.diff(gammas) > 0)
        assert np.all(np.diff(betas) < 0)

    def test_endpoints(self):
        x = ramp_init(4, gamma_max=0.8, beta_max=0.6)
        assert x[3] == pytest.approx(0.8)  # last gamma = gamma_max
        assert x[4] == pytest.approx(0.6)  # first beta = beta_max

    def test_jitter_perturbs(self):
        base = ramp_init(3)
        jittered = ramp_init(3, rng=np.random.default_rng(0), jitter=0.1)
        assert not np.array_equal(base, jittered)
        assert np.max(np.abs(base - jittered)) <= 0.1 + 1e-12

    def test_ramp_beats_zero_on_cycle(self):
        """The ramp start already captures cut energy without training."""
        g = cycle_graph(8)
        energy = AnsatzEnergy(build_qaoa_ansatz(g, 2))
        assert energy.value(ramp_init(2)) > energy.value([0, 0, 0, 0])


class TestInterp:
    def test_output_length(self):
        assert interp_init([0.5, 0.3]).shape == (4,)  # p=1 -> p=2
        assert interp_init([0.1, 0.2, 0.3, 0.4]).shape == (6,)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            interp_init([0.1, 0.2, 0.3])

    def test_p1_lift_structure(self):
        """Lifting (g, b) from p=1: gammas (g, 0)->interp = (g, g)? Check the
        published formula's endpoints: x'_0 = x_0, x'_p = x_{p-1}."""
        lifted = interp_init([0.5, 0.3])
        gammas, betas = lifted[:2], lifted[2:]
        assert gammas[0] == pytest.approx(0.5)
        assert gammas[1] == pytest.approx(0.5)
        assert betas[0] == pytest.approx(0.3)

    def test_lift_preserves_energy_approximately(self):
        """The lifted point should retain most of the optimized energy —
        the property that makes INTERP warm starts work."""
        from repro.optimizers import Cobyla

        g = erdos_renyi_graph(6, 0.5, seed=9, require_connected=True)
        e1 = AnsatzEnergy(build_qaoa_ansatz(g, 1))
        result = Cobyla(maxiter=120).minimize(e1.negative, [0.3, 0.2])
        trained_p1 = -result.fun
        e2 = AnsatzEnergy(build_qaoa_ansatz(g, 2))
        lifted_energy = e2.value(interp_init(result.x))
        assert lifted_energy > 0.9 * trained_p1


class TestFactory:
    def test_known_strategies(self):
        rng = np.random.default_rng(0)
        assert make_initializer("uniform")(2, rng).shape == (4,)
        assert make_initializer("ramp")(2, rng).shape == (4,)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_initializer("oracle")


class TestEvaluatorIntegration:
    def test_ramp_strategy_in_evaluator(self):
        from repro.core.evaluator import EvaluationConfig, Evaluator

        g = cycle_graph(6)
        config = EvaluationConfig(max_steps=20, seed=0, init_strategy="ramp")
        result = Evaluator([g], config).evaluate(("rx",), 2)
        assert result.energy > g.num_edges / 2  # trained above |+> baseline

    def test_invalid_strategy_rejected(self):
        from repro.core.evaluator import EvaluationConfig

        with pytest.raises(ValueError, match="init strategy"):
            EvaluationConfig(init_strategy="psychic")
