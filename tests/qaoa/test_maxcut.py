"""Max-cut objective and classical solvers."""

import numpy as np
import pytest

from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.qaoa.maxcut import (
    approximation_ratio,
    brute_force_maxcut,
    cut_value,
    greedy_maxcut,
    local_search_maxcut,
    random_cut_expectation,
)


class TestCutValue:
    def test_binary_assignment(self):
        assert cut_value(path_graph(3), [0, 1, 0]) == 2.0

    def test_spin_assignment(self):
        assert cut_value(path_graph(3), [-1, 1, -1]) == 2.0

    def test_all_same_side_zero(self):
        assert cut_value(complete_graph(4), [0, 0, 0, 0]) == 0.0

    def test_weighted(self):
        g = Graph(2, ((0, 1),), (2.5,))
        assert cut_value(g, [0, 1]) == 2.5

    def test_length_validation(self):
        with pytest.raises(ValueError):
            cut_value(path_graph(3), [0, 1])


class TestBruteForce:
    def test_even_cycle_full_cut(self):
        sol = brute_force_maxcut(cycle_graph(6))
        assert sol.value == 6.0

    def test_odd_cycle_one_short(self):
        sol = brute_force_maxcut(cycle_graph(5))
        assert sol.value == 4.0

    def test_complete_graph_balanced_split(self):
        # K4 max cut = 2*2 = 4
        assert brute_force_maxcut(complete_graph(4)).value == 4.0

    def test_star_cuts_everything(self):
        assert brute_force_maxcut(star_graph(6)).value == 5.0

    def test_bitstring_achieves_value(self):
        g = erdos_renyi_graph(8, 0.5, seed=3)
        sol = brute_force_maxcut(g)
        bits = [(sol.bitstring >> k) & 1 for k in range(8)]
        assert cut_value(g, bits) == sol.value

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="intractable"):
            brute_force_maxcut(Graph(25, ()))


class TestHeuristics:
    def test_greedy_within_half_of_optimum(self):
        """Greedy max-cut is a 1/2-approximation."""
        for seed in range(5):
            g = erdos_renyi_graph(10, 0.5, seed=seed)
            opt = brute_force_maxcut(g).value
            greedy = greedy_maxcut(g, seed=seed).value
            assert greedy >= opt / 2

    def test_local_search_at_least_greedy(self):
        for seed in range(5):
            g = erdos_renyi_graph(10, 0.5, seed=100 + seed)
            assert (
                local_search_maxcut(g, seed=seed).value
                >= greedy_maxcut(g, seed=seed).value
            )

    def test_local_search_is_1flip_optimal(self):
        g = erdos_renyi_graph(9, 0.5, seed=7)
        sol = local_search_maxcut(g, seed=0)
        bits = np.array([(sol.bitstring >> k) & 1 for k in range(9)])
        for i in range(9):
            flipped = bits.copy()
            flipped[i] ^= 1
            assert cut_value(g, flipped) <= sol.value + 1e-12

    def test_methods_labelled(self):
        g = cycle_graph(4)
        assert brute_force_maxcut(g).method == "brute_force"
        assert greedy_maxcut(g).method == "greedy"
        assert local_search_maxcut(g).method == "local_search"


class TestRatios:
    def test_random_cut_expectation(self):
        assert random_cut_expectation(cycle_graph(6)) == 3.0

    def test_ratio_of_optimum_is_one(self):
        g = cycle_graph(6)
        assert approximation_ratio(6.0, g) == pytest.approx(1.0)

    def test_ratio_uses_given_classical_value(self):
        g = cycle_graph(6)
        assert approximation_ratio(3.0, g, classical_value=6.0) == pytest.approx(0.5)

    def test_empty_graph_ratio_defined(self):
        assert approximation_ratio(0.0, Graph(3, ())) == 1.0
