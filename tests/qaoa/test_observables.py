"""Pauli-sum observables, Ising/QUBO conversions."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.qaoa.observables import (
    PauliSum,
    PauliTerm,
    ising_hamiltonian,
    maxcut_hamiltonian,
    qubo_to_ising,
    tfim_hamiltonian,
)
from repro.simulators.expectation import maxcut_expectation
from repro.simulators.statevector import basis_state, plus_state, simulate


class TestPauliTerm:
    def test_normalizes_case(self):
        assert PauliTerm("xiz", 1.0).pauli == "XIZ"

    def test_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            PauliTerm("XQ", 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PauliTerm("", 1.0)

    def test_diagonal_flag(self):
        assert PauliTerm("IZZ", 1.0).is_diagonal
        assert not PauliTerm("XZI", 1.0).is_diagonal


class TestPauliSum:
    def test_merges_duplicate_strings(self):
        H = PauliSum([PauliTerm("ZZ", 1.0), PauliTerm("ZZ", 0.5)])
        assert len(H) == 1
        assert H.terms[0].coefficient == 1.5

    def test_drops_zero_terms(self):
        H = PauliSum([PauliTerm("ZZ", 1.0), PauliTerm("ZZ", -1.0), PauliTerm("XX", 1.0)])
        assert len(H) == 1

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="widths"):
            PauliSum([PauliTerm("Z", 1.0), PauliTerm("ZZ", 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PauliSum([])

    def test_expectation_vs_matrix(self):
        H = PauliSum([PauliTerm("XZ", 0.7), PauliTerm("YY", -0.3), PauliTerm("IZ", 1.1)])
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.4, 1).ry(0.9, 0)
        psi = simulate(qc)
        direct = H.expectation(psi)
        via_matrix = float(np.real(psi.conj() @ H.matrix() @ psi))
        assert direct == pytest.approx(via_matrix, abs=1e-10)

    def test_diagonal_fast_path_matches(self):
        H = PauliSum([PauliTerm("ZZI", 0.5), PauliTerm("IZZ", -1.0), PauliTerm("ZII", 2.0)])
        assert H.is_diagonal
        psi = simulate(QuantumCircuit(3).h(0).cx(0, 1).ry(0.3, 2))
        via_diag = float(np.abs(psi) ** 2 @ H.diagonal())
        assert H.expectation(psi) == pytest.approx(via_diag, abs=1e-12)

    def test_diagonal_raises_for_offdiagonal(self):
        with pytest.raises(ValueError, match="off-diagonal"):
            PauliSum([PauliTerm("X", 1.0)]).diagonal()

    def test_ground_energy_diagonal(self):
        H = PauliSum([PauliTerm("ZZ", 1.0)])  # min eigenvalue -1
        assert H.ground_energy() == pytest.approx(-1.0)

    def test_ground_energy_matches_eigensolver(self):
        H = tfim_hamiltonian(3, 1.0, 0.7)
        eig = float(np.linalg.eigvalsh(H.matrix()).min())
        assert H.ground_energy() == pytest.approx(eig, abs=1e-10)


class TestModelHamiltonians:
    def test_maxcut_hamiltonian_matches_cut_expectation(self):
        g = erdos_renyi_graph(6, 0.5, seed=5)
        H = maxcut_hamiltonian(g)
        psi = simulate(QuantumCircuit(6).h(0).cx(0, 3).ry(0.8, 2))
        assert H.expectation(psi) == pytest.approx(maxcut_expectation(psi, g), abs=1e-10)

    def test_maxcut_hamiltonian_max_is_optimum(self):
        from repro.qaoa.maxcut import brute_force_maxcut

        g = cycle_graph(5)
        H = maxcut_hamiltonian(g)
        assert H.diagonal().max() == pytest.approx(brute_force_maxcut(g).value)

    def test_ising_fields_and_couplings(self):
        H = ising_hamiltonian(2, {(0, 1): 1.0}, {0: 0.5})
        # on |00>: Z0 Z1 = +1, Z0 = +1 -> 1.5
        assert H.expectation(basis_state(2, 0)) == pytest.approx(1.5)
        # on |01> (q0=1): Z0Z1 = -1, Z0 = -1 -> -1.5
        assert H.expectation(basis_state(2, 1)) == pytest.approx(-1.5)

    def test_tfim_known_two_qubit_ground(self):
        """n=2 TFIM, J=h=1: ground energy = -sqrt(J^2 + ...) — check vs
        dense eigensolve (and that it's below the classical -J)."""
        H = tfim_hamiltonian(2, 1.0, 1.0)
        exact = float(np.linalg.eigvalsh(H.matrix()).min())
        assert H.ground_energy() == pytest.approx(exact)
        assert H.ground_energy() < -1.0

    def test_tfim_h_zero_is_classical(self):
        H = tfim_hamiltonian(4, 1.0, 0.0)
        assert H.is_diagonal
        assert H.ground_energy() == pytest.approx(-3.0)  # aligned chain


class TestQuboConversion:
    def test_objective_preserved_on_all_bitstrings(self):
        rng = np.random.default_rng(3)
        Q = rng.normal(size=(5, 5))
        H = qubo_to_ising(Q)
        diag = H.diagonal()
        sym = (Q + Q.T) / 2
        for x_int in range(32):
            x = np.array([(x_int >> k) & 1 for k in range(5)], dtype=float)
            assert diag[x_int] == pytest.approx(float(x @ sym @ x), abs=1e-9)

    def test_minimum_agrees_with_bruteforce(self):
        rng = np.random.default_rng(4)
        Q = rng.normal(size=(6, 6))
        H = qubo_to_ising(Q)
        sym = (Q + Q.T) / 2
        best = min(
            float(
                np.array([(z >> k) & 1 for k in range(6)], dtype=float)
                @ sym
                @ np.array([(z >> k) & 1 for k in range(6)], dtype=float)
            )
            for z in range(64)
        )
        assert H.ground_energy() == pytest.approx(best, abs=1e-9)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            qubo_to_ising(np.zeros((2, 3)))


class TestZeroObservable:
    def test_empty_with_width_is_zero(self):
        H = PauliSum([], num_qubits=3)
        assert H.num_qubits == 3
        assert len(H) == 0
        assert H.expectation(plus_state(3)) == 0.0
        assert H.ground_energy() == 0.0

    def test_cancelling_terms_leave_zero(self):
        H = PauliSum([PauliTerm("Z", 1.0), PauliTerm("Z", -1.0)])
        assert len(H) == 0
        assert H.expectation(basis_state(1, 0)) == 0.0

    def test_empty_without_width_rejected(self):
        with pytest.raises(ValueError, match="num_qubits"):
            PauliSum([])

    def test_zero_ising_hamiltonian(self):
        H = ising_hamiltonian(4, {})
        assert H.num_qubits == 4
        assert np.all(H.diagonal() == 0.0)
