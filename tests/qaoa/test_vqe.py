"""VQE-style ansatz construction and search on PauliSum Hamiltonians."""
import pytest

from repro.optimizers import Cobyla
from repro.qaoa.observables import tfim_hamiltonian
from repro.qaoa.vqe import VQEEnergy, build_vqe_ansatz, search_vqe_ansatz, train_vqe


class TestAnsatzConstruction:
    def test_parameter_count(self):
        # 2 parameterized tokens x 3 layers
        ansatz = build_vqe_ansatz(4, ("ry", "rz"), 3)
        assert ansatz.num_parameters == 6

    def test_fixed_tokens_add_no_parameters(self):
        ansatz = build_vqe_ansatz(4, ("h", "ry"), 2)
        assert ansatz.num_parameters == 2

    def test_entangling_chain_present(self):
        ansatz = build_vqe_ansatz(4, ("ry",), 2, entangle=True)
        assert ansatz.circuit.count_ops()["cx"] == 3 * 2

    def test_no_entangle_option(self):
        ansatz = build_vqe_ansatz(4, ("ry",), 2, entangle=False)
        assert "cx" not in ansatz.circuit.count_ops()

    def test_parameters_shared_across_qubits_within_layer(self):
        ansatz = build_vqe_ansatz(5, ("ry",), 1)
        assert ansatz.num_parameters == 1
        ry_count = ansatz.circuit.count_ops()["ry"]
        assert ry_count == 5  # one gate per qubit, same parameter

    def test_entangler_tokens_rejected(self):
        with pytest.raises(ValueError, match="not usable"):
            build_vqe_ansatz(4, ("cz_ring",), 1)

    def test_empty_tokens_rejected(self):
        with pytest.raises(ValueError):
            build_vqe_ansatz(4, (), 1)

    def test_bind_validates_length(self):
        ansatz = build_vqe_ansatz(3, ("ry",), 2)
        with pytest.raises(ValueError):
            ansatz.bind([0.1])


class TestVQEEnergy:
    def test_width_mismatch_rejected(self):
        H = tfim_hamiltonian(3)
        ansatz = build_vqe_ansatz(4, ("ry",), 1)
        with pytest.raises(ValueError, match="width"):
            VQEEnergy(ansatz, H)

    def test_zero_angles_give_reference_energy(self):
        H = tfim_hamiltonian(3, 1.0, 1.0)
        ansatz = build_vqe_ansatz(3, ("ry",), 1, entangle=False)
        energy = VQEEnergy(ansatz, H)
        # |000>: ZZ terms give -2J, X terms give 0
        assert energy.value([0.0]) == pytest.approx(-2.0)

    def test_counts_evaluations(self):
        H = tfim_hamiltonian(2)
        energy = VQEEnergy(build_vqe_ansatz(2, ("ry",), 1), H)
        energy.value([0.1])
        energy.value([0.2])
        assert energy.num_evaluations == 2


class TestTraining:
    def test_reaches_near_ground_on_tfim(self):
        H = tfim_hamiltonian(4, 1.0, 1.0)
        result = train_vqe(H, ("ry",), layers=3, restarts=2,
                           optimizer=Cobyla(maxiter=150))
        assert result.error < 0.2
        assert result.energy >= H.ground_energy() - 1e-9  # variational bound

    def test_variational_principle_never_violated(self):
        H = tfim_hamiltonian(3, 1.0, 0.5)
        for layers in (1, 2):
            result = train_vqe(H, ("ry", "rz"), layers=layers, restarts=1,
                               optimizer=Cobyla(maxiter=40))
            assert result.energy >= H.ground_energy() - 1e-9

    def test_more_layers_never_much_worse(self):
        H = tfim_hamiltonian(3, 1.0, 1.0)
        shallow = train_vqe(H, ("ry",), 1, restarts=2, optimizer=Cobyla(maxiter=100))
        deep = train_vqe(H, ("ry",), 3, restarts=2, optimizer=Cobyla(maxiter=100))
        assert deep.energy <= shallow.energy + 0.1

    def test_deterministic_given_seed(self):
        H = tfim_hamiltonian(3)
        a = train_vqe(H, ("ry",), 2, seed=5, optimizer=Cobyla(maxiter=30))
        b = train_vqe(H, ("ry",), 2, seed=5, optimizer=Cobyla(maxiter=30))
        assert a.energy == b.energy

    def test_entanglement_required_for_tfim(self):
        """Product ansatz cannot reach the entangled ground state."""
        H = tfim_hamiltonian(4, 1.0, 1.0)
        product = train_vqe(H, ("ry",), 2, entangle=False,
                            optimizer=Cobyla(maxiter=120), restarts=2)
        entangled = train_vqe(H, ("ry",), 2, entangle=True,
                              optimizer=Cobyla(maxiter=120), restarts=2)
        assert entangled.energy < product.energy - 0.05


class TestSearch:
    def test_ranking_sorted_ascending(self):
        H = tfim_hamiltonian(3, 1.0, 1.0)
        ranking = search_vqe_ansatz(
            H, [("ry",), ("rz",), ("ry", "rz")], layers=2, optimizer_steps=60
        )
        energies = [r.energy for r in ranking]
        assert energies == sorted(energies)

    def test_rz_only_ansatz_ranks_last(self):
        """RZ layers act trivially on |0...0> before any X/Y rotation: the
        search must discover that rz-only cannot train on TFIM."""
        H = tfim_hamiltonian(3, 1.0, 1.0)
        ranking = search_vqe_ansatz(
            H, [("ry",), ("rz",)], layers=2, optimizer_steps=60
        )
        assert ranking[0].tokens == ("ry",)
        assert ranking[-1].tokens == ("rz",)
