"""Contraction backend protocol and the simulated-GPU cost model."""

import numpy as np
import pytest

from repro.qtensor.backends import DeviceModel, NumpyBackend, SimulatedGPUBackend, get_backend
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable


def _bucket():
    a, b, c = Variable(0), Variable(1), Variable(2)
    rng = np.random.default_rng(3)
    return (
        [
            Tensor("t1", rng.normal(size=(2, 2)), [a, b]),
            Tensor("t2", rng.normal(size=(2, 2)), [b, c]),
        ],
        a,
        b,
        c,
    )


class TestFactory:
    def test_names(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("gpu").name == "simulated_gpu"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_backend("fpga")


class TestNumpyBackend:
    def test_contract_bucket_sums_variable(self):
        tensors, a, b, c = _bucket()
        result = NumpyBackend().contract_bucket(tensors, b)
        assert set(result.indices) == {a, c}
        expected = np.einsum("ab,bc->ac", tensors[0].data, tensors[1].data)
        np.testing.assert_allclose(result.data, expected)

    def test_output_index_order_deterministic(self):
        tensors, a, b, c = _bucket()
        result = NumpyBackend().contract_bucket(tensors, b)
        assert result.indices == (a, c)  # sorted by variable id

    def test_combine_empty_is_scalar_one(self):
        result = NumpyBackend().combine([], [])
        assert result.scalar() == pytest.approx(1.0)

    def test_combine_orders_output(self):
        a, b = Variable(0), Variable(1)
        t = Tensor("t", np.arange(4.0).reshape(2, 2), [a, b])
        result = NumpyBackend().combine([t], [b, a])
        np.testing.assert_allclose(result.data, t.data.T)


class TestSimulatedGPU:
    def test_same_numerics_as_numpy(self):
        tensors, a, b, c = _bucket()
        cpu = NumpyBackend().contract_bucket(tensors, b)
        gpu = SimulatedGPUBackend().contract_bucket(tensors, b)
        np.testing.assert_allclose(gpu.data, cpu.data)

    def test_upload_charged_once_per_tensor(self):
        tensors, a, b, c = _bucket()
        backend = SimulatedGPUBackend()
        backend.contract_bucket(tensors, b)
        first = backend.bytes_transferred
        # same (cached) tensors again: no second upload charge
        backend.contract_bucket(tensors, b)
        assert backend.bytes_transferred == first

    def test_kernel_latency_dominates_small_buckets(self):
        model = DeviceModel(kernel_latency=1e-3, flop_rate=1e15, transfer_bandwidth=1e15)
        backend = SimulatedGPUBackend(model)
        tensors, a, b, c = _bucket()
        backend.contract_bucket(tensors, b)
        assert backend.device_seconds == pytest.approx(1e-3, rel=0.2)

    def test_flops_grow_with_bucket_width(self):
        rng = np.random.default_rng(0)
        small_vars = [Variable(i) for i in range(3)]
        big_vars = [Variable(i) for i in range(8)]
        small = [Tensor("s", rng.normal(size=(2,) * 3), small_vars)]
        big = [Tensor("b", rng.normal(size=(2,) * 8), big_vars)]
        backend = SimulatedGPUBackend()
        backend.contract_bucket(small, small_vars[0])
        f_small = backend.flops
        backend.reset_stats()
        backend.contract_bucket(big, big_vars[0])
        assert backend.flops > f_small

    def test_reset_stats(self):
        backend = SimulatedGPUBackend()
        tensors, a, b, c = _bucket()
        backend.contract_bucket(tensors, b)
        backend.reset_stats()
        assert backend.device_seconds == 0.0
        assert backend.bytes_transferred == 0
        assert backend.flops == 0.0

    def test_combine_charges_download(self):
        a = Variable(0)
        t = Tensor("t", np.ones(2), [a])
        backend = SimulatedGPUBackend()
        backend.combine([t], [a])
        # upload of t + download of result
        assert backend.bytes_transferred >= 2 * 2 * 16
