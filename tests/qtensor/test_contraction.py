"""Bucket elimination and slicing."""

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.qtensor.backends import NumpyBackend
from repro.qtensor.contraction import (
    bucket_elimination,
    choose_slice_vars,
    contract_network,
    contract_sliced,
)
from repro.qtensor.network import TensorNetwork
from repro.qtensor.ordering import order_for_tensors
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable
from repro.simulators.statevector import simulate


class TestBucketElimination:
    def test_matrix_chain(self):
        """A - B - C chain contracts to the matrix product trace."""
        a, b = Variable(0), Variable(1)
        m1 = np.random.default_rng(0).normal(size=(2, 2))
        m2 = np.random.default_rng(1).normal(size=(2, 2))
        tensors = [Tensor("m1", m1, [a, b]), Tensor("m2", m2, [a, b])]
        result = bucket_elimination(tensors, [a, b], ())
        assert result.scalar() == pytest.approx(np.sum(m1 * m2))

    def test_open_variable_kept(self):
        a, b = Variable(0), Variable(1)
        m = np.arange(4.0).reshape(2, 2)
        vec = np.array([1.0, 2.0])
        tensors = [Tensor("m", m, [a, b]), Tensor("v", vec, [a])]
        result = bucket_elimination(tensors, [a], [b])
        assert result.indices == (b,)
        np.testing.assert_allclose(result.data, m.T @ vec)

    def test_unaccounted_variable_rejected(self):
        a, b = Variable(0), Variable(1)
        t = Tensor("t", np.zeros((2, 2)), [a, b])
        with pytest.raises(ValueError, match="neither ordered nor open"):
            bucket_elimination([t], [a], ())

    def test_open_var_in_order_rejected(self):
        a = Variable(0)
        t = Tensor("t", np.zeros(2), [a])
        with pytest.raises(ValueError, match="also appear"):
            bucket_elimination([t], [a], [a])

    def test_disconnected_components_multiply(self):
        a, b = Variable(0), Variable(1)
        t1 = Tensor("t1", np.array([1.0, 2.0]), [a])
        t2 = Tensor("t2", np.array([3.0, 4.0]), [b])
        result = bucket_elimination([t1, t2], [a, b], ())
        assert result.scalar() == pytest.approx(3.0 * 7.0)

    def test_empty_network_scalar_one(self):
        result = bucket_elimination([], [], ())
        assert result.scalar() == pytest.approx(1.0)

    def test_order_invariance_of_value(self):
        """Any valid elimination order yields the same scalar."""
        qc = random_circuit(3, 12, seed=5)
        net = TensorNetwork.from_circuit(qc, output_bitstring=3)
        values = []
        for seed in range(4):
            order = order_for_tensors(net.tensors, method="random", seed=seed)
            result = bucket_elimination(net.tensors, order.order, ())
            values.append(result.scalar())
        np.testing.assert_allclose(values, values[0], atol=1e-10)

    def test_matches_statevector_amplitudes(self):
        qc = random_circuit(4, 25, seed=11)
        psi = simulate(qc)
        for b in (0, 5, 9, 15):
            net = TensorNetwork.from_circuit(qc, output_bitstring=b)
            amp = complex(contract_network(net))
            assert amp == pytest.approx(complex(psi[b]), abs=1e-10)


class TestWideBucketChunking:
    def test_many_tensors_on_one_variable(self):
        """More operands than the einsum chunk limit still contract."""
        v = Variable(0)
        tensors = [Tensor(f"t{i}", np.array([1.0, 0.5]), [v]) for i in range(40)]
        result = bucket_elimination(tensors, [v], ())
        assert result.scalar() == pytest.approx(1.0 + 0.5**40)


class TestSlicing:
    def test_choose_slice_vars_highest_degree(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2).h(0)
        net = TensorNetwork.from_circuit(qc, output_bitstring=0)
        sliced = choose_slice_vars(net.tensors, 1)
        from repro.qtensor.network import interaction_graph

        graph = interaction_graph(net.tensors)
        max_degree = max(len(nbrs) for nbrs in graph.values())
        assert len(graph[sliced[0]]) == max_degree

    def test_sliced_equals_unsliced(self):
        qc = random_circuit(4, 20, seed=2)
        net = TensorNetwork.from_circuit(qc, output_bitstring=7)
        direct = complex(contract_network(net))
        for num_slice in (1, 2):
            slice_vars = choose_slice_vars(net.tensors, num_slice)
            value = contract_sliced(net, slice_vars)
            assert value == pytest.approx(direct, abs=1e-10)

    def test_sliced_rejects_open_networks(self):
        net = TensorNetwork.from_circuit(QuantumCircuit(2).h(0))
        with pytest.raises(ValueError, match="closed"):
            contract_sliced(net, [])

    def test_slicing_with_parallel_map(self):
        """map_fn injection: slices can run through any mapper."""
        qc = random_circuit(3, 15, seed=4)
        net = TensorNetwork.from_circuit(qc, output_bitstring=1)
        direct = complex(contract_network(net))
        slice_vars = choose_slice_vars(net.tensors, 2)
        collected = []

        def tracking_map(fn, jobs):
            jobs = list(jobs)
            collected.append(len(jobs))
            return [fn(j) for j in jobs]

        value = contract_sliced(net, slice_vars, map_fn=tracking_map)
        assert value == pytest.approx(direct, abs=1e-10)
        assert collected == [4]  # 2^2 independent slices


class TestBackendStats:
    def test_numpy_backend_counters(self):
        backend = NumpyBackend()
        qc = random_circuit(3, 10, seed=6)
        net = TensorNetwork.from_circuit(qc, output_bitstring=0)
        contract_network(net, backend=backend)
        stats = backend.stats()
        assert stats["buckets"] > 0
        assert stats["elements_written"] > 0
        backend.reset_stats()
        assert backend.stats()["buckets"] == 0
