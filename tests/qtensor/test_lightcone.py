"""Reverse-lightcone pruning correctness and tightness."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.lightcone import lightcone_circuit, lightcone_qubits
from repro.simulators.expectation import zz_expectation
from repro.simulators.statevector import simulate


def _zz_energy(circuit, u, v, init):
    return zz_expectation(simulate(circuit, init), u, v, circuit.num_qubits)


class TestCorrectness:
    def test_expectation_invariant_under_pruning(self):
        """<Z_u Z_v> computed on the pruned circuit equals the full one."""
        g = random_regular_graph(8, 3, seed=1)
        ansatz = build_qaoa_ansatz(g, 2, ("rx", "ry"))
        bound = ansatz.bind([0.3, -0.7, 0.5, 0.2])
        init = np.zeros(2**8, dtype=complex)
        init[0] = 1.0
        for u, v in list(g.edges)[:4]:
            full = _zz_energy(bound, u, v, init)
            cone = lightcone_circuit(bound, [u, v])
            pruned = _zz_energy(cone, u, v, init)
            assert pruned == pytest.approx(full, abs=1e-10)

    def test_diag_aware_still_correct(self):
        g = cycle_graph(6)
        bound = build_qaoa_ansatz(g, 1).bind([0.4, 0.9])
        for diag_aware in (True, False):
            cone = lightcone_circuit(bound, [0, 1], diag_aware=diag_aware)
            init = np.zeros(2**6, dtype=complex)
            init[0] = 1.0
            assert _zz_energy(cone, 0, 1, init) == pytest.approx(
                _zz_energy(bound, 0, 1, init), abs=1e-10
            )

    def test_gate_order_preserved(self):
        qc = QuantumCircuit(2).h(0).rx(0.1, 0).ry(0.2, 0)
        cone = lightcone_circuit(qc, [0])
        assert [i.gate.name for i in cone] == ["h", "rx", "ry"]


class TestPruningPower:
    def test_unrelated_qubits_dropped(self):
        qc = QuantumCircuit(4).h(0).h(1).h(2).h(3).rx(0.4, 3)
        cone = lightcone_circuit(qc, [0])
        assert cone.size() == 1
        assert cone.instructions[0].qubits == (0,)

    def test_p1_cone_is_edge_neighbourhood(self):
        """For p=1 QAOA the cone of edge (u,v) touches exactly the closed
        neighbourhood of {u, v}."""
        g = cycle_graph(8)
        bound = build_qaoa_ansatz(g, 1).bind([0.3, 0.5])
        u, v = 2, 3
        cone_qubits = lightcone_qubits(bound, [u, v])
        expected = {u, v} | set(g.neighbors(u)) | set(g.neighbors(v))
        assert cone_qubits == expected

    def test_final_diagonal_layer_dropped(self):
        """The trailing cost layer commutes with ZZ and disappears."""
        g = cycle_graph(6)
        qc = QuantumCircuit(6)
        for q in range(6):
            qc.h(q)
        for (u, v), w in zip(g.edges, g.weights):
            qc.rzz(0.5 * w, u, v)
        cone = lightcone_circuit(qc, [0, 1], diag_aware=True)
        assert "rzz" not in cone.count_ops()
        # without diag-awareness they are kept
        cone_plain = lightcone_circuit(qc, [0, 1], diag_aware=False)
        assert "rzz" in cone_plain.count_ops()

    def test_cone_smaller_than_circuit_on_sparse_graph(self):
        g = random_regular_graph(12, 3, seed=5)
        bound = build_qaoa_ansatz(g, 1).bind([0.3, 0.5])
        u, v = g.edges[0]
        cone = lightcone_circuit(bound, [u, v])
        assert cone.size() < bound.size()

    def test_empty_observable_set_gives_empty_cone(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        assert lightcone_circuit(qc, []).size() == 0

    def test_qubit_validation(self):
        with pytest.raises(ValueError):
            lightcone_circuit(QuantumCircuit(2).h(0), [5])
