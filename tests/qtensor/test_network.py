"""Circuit -> tensor network conversion."""

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import cycle_graph
from repro.qtensor.contraction import contract_network
from repro.qtensor.network import TensorNetwork, interaction_graph, product_state_vectors
from repro.simulators.expectation import maxcut_expectation
from repro.simulators.statevector import plus_state, simulate


class TestProductStates:
    def test_named_states(self):
        vecs = product_state_vectors("+", 2)
        np.testing.assert_allclose(vecs[0], [2**-0.5, 2**-0.5])

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown initial state"):
            product_state_vectors("magic", 2)

    def test_explicit_vectors(self):
        vecs = product_state_vectors([np.array([1, 0]), np.array([0, 1])], 2)
        assert len(vecs) == 2

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="qubit states"):
            product_state_vectors([np.array([1, 0])], 2)

    def test_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            product_state_vectors([np.array([1, 0, 0])], 1)


class TestDiagonalOptimization:
    def test_diagonal_gates_add_no_variables(self):
        """A purely diagonal circuit keeps one variable per qubit."""
        qc = QuantumCircuit(3).rz(0.3, 0).cz(0, 1).rzz(0.5, 1, 2).p(0.1, 2)
        net = TensorNetwork.from_circuit(qc)
        # 3 input caps + 4 gate tensors, but only the 3 initial wire vars
        assert len(net.all_vars()) == 3

    def test_nondiagonal_gates_advance_wires(self):
        qc = QuantumCircuit(1).h(0).h(0)
        net = TensorNetwork.from_circuit(qc)
        assert len(net.all_vars()) == 3  # in, mid, out

    def test_diagonal_tensor_rank_matches_qubits(self):
        qc = QuantumCircuit(2).rzz(0.4, 0, 1)
        net = TensorNetwork.from_circuit(qc)
        gate_tensors = [t for t in net.tensors if t.name == "rzz"]
        assert len(gate_tensors) == 1
        assert gate_tensors[0].rank == 2  # not 4


class TestAmplitudeNetworks:
    def test_closed_network_has_no_open_vars(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        net = TensorNetwork.from_circuit(qc, output_bitstring=0)
        assert net.closed()

    def test_bitstring_range_validated(self):
        qc = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError, match="out of range"):
            TensorNetwork.from_circuit(qc, output_bitstring=4)

    def test_bell_amplitudes(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        for b, expected in [(0, 2**-0.5), (1, 0.0), (2, 0.0), (3, 2**-0.5)]:
            net = TensorNetwork.from_circuit(qc, output_bitstring=b)
            amp = complex(contract_network(net))
            assert amp == pytest.approx(expected, abs=1e-12)

    def test_open_network_statevector(self):
        qc = random_circuit(3, 15, seed=3)
        net = TensorNetwork.from_circuit(qc)
        data = contract_network(net)
        psi = data.transpose(2, 1, 0).reshape(8)
        np.testing.assert_allclose(psi, simulate(qc), atol=1e-10)

    def test_plus_initial_state(self):
        qc = QuantumCircuit(2).rzz(0.7, 0, 1)
        net = TensorNetwork.from_circuit(qc, initial_state="+")
        data = contract_network(net)
        psi = data.transpose(1, 0).reshape(4)
        np.testing.assert_allclose(psi, simulate(qc, plus_state(2)), atol=1e-12)


class TestExpectationNetworks:
    def test_cut_expectation_matches_statevector(self):
        g = cycle_graph(4)
        qc = QuantumCircuit(4)
        for (u, v), w in zip(g.edges, g.weights):
            qc.rzz(-0.4 * w, u, v)
        for q in range(4):
            qc.rx(1.1, q)
        total = 0.0
        for u, v in g.edges:
            net = TensorNetwork.expectation(
                qc,
                [((u, v), np.array([0, 1, 1, 0], dtype=complex))],
                initial_state="+",
            )
            total += complex(contract_network(net)).real
        expected = maxcut_expectation(simulate(qc, plus_state(4)), g)
        assert total == pytest.approx(expected, abs=1e-10)

    def test_identity_observable_gives_one(self):
        qc = random_circuit(3, 12, seed=1)
        net = TensorNetwork.expectation(
            qc, [((0,), np.array([1.0, 1.0], dtype=complex))]
        )
        assert complex(contract_network(net)) == pytest.approx(1.0, abs=1e-10)

    def test_diag_term_shape_validated(self):
        qc = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError, match="entries"):
            TensorNetwork.expectation(qc, [((0, 1), np.array([1.0, -1.0]))])

    def test_z_on_zero_state(self):
        qc = QuantumCircuit(1).id(0)
        net = TensorNetwork.expectation(
            qc, [((0,), np.array([1.0, -1.0], dtype=complex))], initial_state="0"
        )
        assert complex(contract_network(net)).real == pytest.approx(1.0)


class TestInteractionGraph:
    def test_vars_sharing_tensor_are_adjacent(self):
        qc = QuantumCircuit(2).cx(0, 1)
        net = TensorNetwork.from_circuit(qc)
        graph = interaction_graph(net.tensors)
        cx = [t for t in net.tensors if t.name == "cx"][0]
        a, b = cx.indices[0], cx.indices[1]
        assert b in graph[a] and a in graph[b]

    def test_no_self_adjacency(self):
        net = TensorNetwork.from_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        graph = interaction_graph(net.tensors)
        for v, nbrs in graph.items():
            assert v not in nbrs
