"""Elimination-order heuristics."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import cycle_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.network import TensorNetwork, interaction_graph
from repro.qtensor.ordering import (
    evaluate_order,
    greedy_random_restarts,
    min_degree_order,
    min_fill_order,
    order_for_tensors,
    random_order,
)
from repro.qtensor.variables import Variable


def _path_graph_vars(n):
    """Interaction graph shaped like a path v0 - v1 - ... - v(n-1)."""
    vs = [Variable(i) for i in range(n)]
    graph = {v: set() for v in vs}
    for i in range(n - 1):
        graph[vs[i]].add(vs[i + 1])
        graph[vs[i + 1]].add(vs[i])
    return vs, graph


def _clique_vars(n):
    vs = [Variable(i) for i in range(n)]
    graph = {v: {u for u in vs if u != v} for v in vs}
    return vs, graph


class TestEvaluateOrder:
    def test_path_width_two(self):
        vs, graph = _path_graph_vars(6)
        order = evaluate_order(graph, vs)
        assert order.width == 2

    def test_clique_width_is_size(self):
        vs, graph = _clique_vars(5)
        order = evaluate_order(graph, vs)
        assert order.width == 5

    def test_repeated_variable_rejected(self):
        vs, graph = _path_graph_vars(3)
        with pytest.raises(ValueError):
            evaluate_order(graph, [vs[0], vs[0], vs[1]])

    def test_log2_cost_monotone_with_width(self):
        vs, graph = _clique_vars(4)
        clique = evaluate_order(graph, vs)
        vs2, graph2 = _path_graph_vars(4)
        path = evaluate_order(graph2, vs2)
        assert clique.log2_cost > path.log2_cost


class TestGreedyHeuristics:
    def test_min_degree_on_star_eliminates_leaves_first(self):
        center = Variable(0)
        leaves = [Variable(i) for i in range(1, 6)]
        graph = {center: set(leaves)}
        for leaf in leaves:
            graph[leaf] = {center}
        order = min_degree_order(graph)
        assert order.order[0] in leaves  # a min-degree leaf goes first
        assert order.width == 2

    def test_min_fill_path_optimal(self):
        vs, graph = _path_graph_vars(8)
        assert min_fill_order(graph).width == 2

    def test_cycle_width_three(self):
        """Eliminating any cycle vertex creates a chord; width is 3."""
        vs = [Variable(i) for i in range(6)]
        graph = {v: set() for v in vs}
        for i in range(6):
            graph[vs[i]].add(vs[(i + 1) % 6])
            graph[vs[(i + 1) % 6]].add(vs[i])
        assert min_fill_order(graph).width == 3
        assert min_degree_order(graph).width == 3

    def test_exclude_keeps_vars_out_of_order(self):
        vs, graph = _path_graph_vars(5)
        order = min_fill_order(graph, exclude=[vs[0]])
        assert vs[0] not in order.order
        assert len(order.order) == 4

    def test_deterministic_without_seed(self):
        vs, graph = _path_graph_vars(7)
        assert min_fill_order(graph).order == min_fill_order(graph).order

    def test_restarts_never_worse_than_plain_greedy(self):
        qc = build_qaoa_ansatz(cycle_graph(8), 2).bind([0.1, 0.2, 0.3, 0.4])
        net = TensorNetwork.from_circuit(qc, output_bitstring=0)
        graph = interaction_graph(net.tensors)
        plain = min_fill_order(graph)
        restarted = greedy_random_restarts(graph, n_restarts=6, seed=0)
        assert (restarted.width, restarted.log2_cost) <= (plain.width, plain.log2_cost)

    def test_random_order_reproducible(self):
        vs, graph = _path_graph_vars(6)
        assert random_order(graph, seed=3).order == random_order(graph, seed=3).order


class TestOrderForTensors:
    def test_unknown_method(self):
        net = TensorNetwork.from_circuit(QuantumCircuit(1).h(0))
        with pytest.raises(ValueError, match="unknown ordering"):
            order_for_tensors(net.tensors, method="cosmic")

    def test_open_vars_excluded(self):
        net = TensorNetwork.from_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        order = order_for_tensors(net.tensors, exclude=net.open_vars)
        assert not (set(order.order) & set(net.open_vars))

    def test_heuristics_beat_random_on_qaoa_network(self):
        """The QTensor premise: heuristic orders give lower widths than
        random ones on structured circuits."""
        ansatz = build_qaoa_ansatz(cycle_graph(10), 2)
        bound = ansatz.bind([0.1, 0.2, 0.3, 0.4])
        net = TensorNetwork.from_circuit(bound, output_bitstring=0)
        fill = order_for_tensors(net.tensors, method="min_fill")
        rand_widths = [
            order_for_tensors(net.tensors, method="random", seed=s).width
            for s in range(5)
        ]
        assert fill.width <= min(rand_widths)
        assert fill.width < np.mean(rand_widths)
