"""QTensorSimulator façade: cross-validation against the dense engine."""

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, random_regular_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.backends import NumpyBackend, SimulatedGPUBackend
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.expectation import maxcut_expectation
from repro.simulators.statevector import plus_state, simulate, zero_state


@pytest.fixture(scope="module")
def sim():
    return QTensorSimulator()


class TestStatevector:
    def test_matches_dense_on_random_circuits(self, sim):
        for seed in range(3):
            qc = random_circuit(4, 25, seed=seed)
            np.testing.assert_allclose(sim.statevector(qc), simulate(qc), atol=1e-10)

    def test_plus_initial_state(self, sim):
        qc = QuantumCircuit(3).rzz(0.4, 0, 1).rx(0.8, 2)
        np.testing.assert_allclose(
            sim.statevector(qc, initial_state="+"),
            simulate(qc, plus_state(3)),
            atol=1e-10,
        )

    def test_symbolic_bindings(self, sim):
        from repro.circuits.parameters import Parameter

        beta = Parameter("beta")
        qc = QuantumCircuit(2).rx(2 * beta, 0).rx(2 * beta, 1)
        psi = sim.statevector(qc, bindings={beta: 0.3})
        expected = simulate(qc, bindings={beta: 0.3})
        np.testing.assert_allclose(psi, expected, atol=1e-10)


class TestAmplitude:
    def test_all_amplitudes_of_ghz(self, sim):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        psi = simulate(qc)
        for b in range(8):
            assert sim.amplitude(qc, b) == pytest.approx(complex(psi[b]), abs=1e-12)


class TestMaxcutEnergy:
    @pytest.mark.parametrize("tokens", [("rx",), ("rx", "ry"), ("ry", "p"), ("h", "p")])
    def test_matches_dense_across_mixers(self, sim, tokens):
        g = erdos_renyi_graph(7, 0.45, seed=9)
        ansatz = build_qaoa_ansatz(g, 2, tokens)
        x = np.linspace(-0.8, 0.8, ansatz.num_parameters)
        bound = ansatz.bind(list(x))
        dense = maxcut_expectation(simulate(bound, zero_state(7)), g)
        tn = sim.maxcut_energy(bound, g, initial_state="0")
        assert tn == pytest.approx(dense, abs=1e-9)

    def test_lightcone_and_full_agree(self):
        g = random_regular_graph(8, 3, seed=4)
        bound = build_qaoa_ansatz(g, 1).bind([0.4, 0.6])
        with_cone = QTensorSimulator(use_lightcone=True)
        without = QTensorSimulator(use_lightcone=False)
        assert with_cone.maxcut_energy(bound, g, initial_state="0") == pytest.approx(
            without.maxcut_energy(bound, g, initial_state="0"), abs=1e-9
        )

    def test_lightcone_reduces_width(self):
        g = random_regular_graph(10, 3, seed=2)
        bound = build_qaoa_ansatz(g, 1).bind([0.4, 0.6])
        with_cone = QTensorSimulator(use_lightcone=True)
        without = QTensorSimulator(use_lightcone=False)
        with_cone.maxcut_energy(bound, g, initial_state="0")
        without.maxcut_energy(bound, g, initial_state="0")
        assert max(with_cone.last_widths) <= max(without.last_widths)

    def test_widths_recorded_per_edge(self, sim):
        g = cycle_graph(5)
        bound = build_qaoa_ansatz(g, 1).bind([0.1, 0.2])
        sim.maxcut_energy(bound, g)
        assert len(sim.last_widths) == g.num_edges

    def test_weighted_graph_energy(self, sim):
        from repro.graphs.generators import Graph

        g = Graph(4, ((0, 1), (1, 2), (2, 3)), (2.0, 0.5, 1.5))
        bound = build_qaoa_ansatz(g, 1).bind([0.3, 0.7])
        dense = maxcut_expectation(simulate(bound, zero_state(4)), g)
        assert sim.maxcut_energy(bound, g, initial_state="0") == pytest.approx(dense, abs=1e-9)


class TestBackendSelection:
    def test_string_backend_resolution(self):
        assert isinstance(QTensorSimulator(backend="numpy").backend, NumpyBackend)
        assert isinstance(QTensorSimulator(backend="gpu").backend, SimulatedGPUBackend)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            QTensorSimulator(backend="tpu")

    def test_gpu_backend_same_values_with_accounting(self):
        g = cycle_graph(5)
        bound = build_qaoa_ansatz(g, 1).bind([0.4, 0.6])
        cpu = QTensorSimulator(backend="numpy")
        gpu = QTensorSimulator(backend="gpu")
        e_cpu = cpu.maxcut_energy(bound, g, initial_state="0")
        e_gpu = gpu.maxcut_energy(bound, g, initial_state="0")
        assert e_gpu == pytest.approx(e_cpu, abs=1e-10)
        stats = gpu.backend.stats()
        assert stats["device_seconds"] > 0
        assert stats["bytes_transferred"] > 0

    def test_ordering_method_passthrough(self):
        g = cycle_graph(4)
        bound = build_qaoa_ansatz(g, 1).bind([0.4, 0.6])
        for method in ("min_fill", "min_degree", "random"):
            sim = QTensorSimulator(ordering_method=method, ordering_seed=1)
            value = sim.maxcut_energy(bound, g, initial_state="0")
            dense = maxcut_expectation(simulate(bound, zero_state(4)), g)
            assert value == pytest.approx(dense, abs=1e-9)
