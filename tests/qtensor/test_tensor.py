"""Tensor and Variable primitives."""

import numpy as np
import pytest

from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable, VariableFactory


class TestVariable:
    def test_identity_by_id(self):
        assert Variable(1) == Variable(1)
        assert Variable(1) != Variable(2)

    def test_ordering_by_id(self):
        assert Variable(1) < Variable(2)
        assert sorted([Variable(3), Variable(1)]) == [Variable(1), Variable(3)]

    def test_hashable(self):
        assert len({Variable(1), Variable(1), Variable(2)}) == 2

    def test_factory_sequential_unique(self):
        factory = VariableFactory()
        vars_ = factory.fresh_many(5)
        assert len({v.id for v in vars_}) == 5
        assert vars_[0].id < vars_[4].id

    def test_factories_independent(self):
        """Each network builder restarts ids at 0 (reproducible orders)."""
        a, b = VariableFactory(), VariableFactory()
        assert a.fresh().id == b.fresh().id == 0


class TestTensor:
    def test_rank_shape_validation(self):
        v = Variable(0)
        with pytest.raises(ValueError, match="rank"):
            Tensor("t", np.zeros((2, 2)), [v])

    def test_size_validation(self):
        v = Variable(0)
        with pytest.raises(ValueError, match="size"):
            Tensor("t", np.zeros(3), [v])

    def test_repeated_variable_rejected(self):
        v = Variable(0)
        with pytest.raises(ValueError, match="repeated"):
            Tensor("t", np.zeros((2, 2)), [v, v])

    def test_conj(self):
        v = Variable(0)
        t = Tensor("t", np.array([1 + 1j, 2 - 1j]), [v])
        np.testing.assert_array_equal(t.conj().data, [1 - 1j, 2 + 1j])
        assert t.conj().indices == t.indices

    def test_rename_vars(self):
        a, b, c = Variable(0), Variable(1), Variable(2)
        t = Tensor("t", np.zeros((2, 2)), [a, b])
        renamed = t.rename_vars({b: c})
        assert renamed.indices == (a, c)
        assert renamed.data is t.data  # no copy

    def test_fix_variable_slices(self):
        a, b = Variable(0), Variable(1)
        data = np.arange(4).reshape(2, 2)
        t = Tensor("t", data, [a, b])
        fixed = t.fix_variable(a, 1)
        assert fixed.indices == (b,)
        np.testing.assert_array_equal(fixed.data, data[1])

    def test_fix_absent_variable_noop(self):
        a, b = Variable(0), Variable(1)
        t = Tensor("t", np.zeros(2), [a])
        assert t.fix_variable(b, 0) is t

    def test_scalar_extraction(self):
        t = Tensor("s", np.asarray(3.0 + 1j), [])
        assert t.scalar() == 3.0 + 1j

    def test_scalar_on_ranked_tensor_raises(self):
        t = Tensor("t", np.zeros(2), [Variable(0)])
        with pytest.raises(ValueError, match="rank"):
            t.scalar()

    def test_repr_contains_vars(self):
        t = Tensor("g", np.zeros((2, 2)), [Variable(0, name="a"), Variable(1, name="b")])
        assert "g(a,b)" == repr(t)
