"""Chaos suite: the hardening claims under deterministic injected faults.

The contract being proven, per ISSUE 7: with workers raising, workers
hanging, and the queue's sqlite store throwing lock errors — all on a
seeded, reproducible schedule — every submitted job still reaches a
terminal state, no candidate is ever trained twice (the shared cache's
claim plane holds), and the search results are bit-identical to a
fault-free run of the same specs.
"""

import sqlite3
import time

import pytest

from repro.api import Config, workload_to_wire
from repro.core.cache import ResultCache
from repro.core.results import SearchResult
from repro.parallel.async_executor import AsyncExecutor
from repro.parallel.faults import (
    FaultInjectingExecutor,
    FaultInjectingJobQueue,
    FaultPlan,
)
from repro.service.jobs import TERMINAL_STATES, JobQueue
from repro.service.multiplexer import SweepMultiplexer

#: 6 candidates (k=2 over 4 gate tokens), tiny training budget; retries
#: sized so injected attempt-faults are absorbed below the job layer.
SPEC = {
    "workload": workload_to_wire("er:2:7"),
    "depths": 1,
    "config": Config(
        k_min=2, k_max=2, steps=5, num_samples=6, seed=1, retries=3
    ).to_dict(),
}
UNIQUE_CANDIDATES = 6


def persistent(fn, *args, **kwargs):
    """Test-side queue access with the same patience the multiplexer has."""
    for _ in range(60):
        try:
            return fn(*args, **kwargs)
        except sqlite3.OperationalError:
            time.sleep(0.02)
    return fn(*args, **kwargs)


def run_jobs(tmp_path, *, plan=None, specs=(SPEC, SPEC), deadline=120.0):
    """Run specs through a (possibly fault-injected) queue + multiplexer;
    returns (records, executor, multiplexer) after every job is terminal."""
    queue_args = dict(
        lease_seconds=1.0, max_attempts=5, backoff_base=0.02, backoff_cap=0.1
    )
    if plan is None:
        queue = JobQueue(tmp_path, **queue_args)
        executor = AsyncExecutor(2)
    else:
        queue = FaultInjectingJobQueue(tmp_path, plan, **queue_args)
        executor = FaultInjectingExecutor(AsyncExecutor(2), plan)
    cache = ResultCache(tmp_path / "cache", flush_every=4, shared=True)
    multiplexer = SweepMultiplexer(
        queue, executor=executor, cache=cache, max_concurrent=2
    )
    job_ids = [persistent(queue.submit, spec) for spec in specs]
    multiplexer.start()
    try:
        expires = time.monotonic() + deadline
        while time.monotonic() < expires:
            records = [persistent(queue.get, job_id) for job_id in job_ids]
            if all(record.state in TERMINAL_STATES for record in records):
                break
            time.sleep(0.05)
    finally:
        multiplexer.stop()
        executor.close()
        cache.close()
        if plan is not None:
            queue._plan = None  # disarm before final inspection
        records = [queue.get(job_id) for job_id in job_ids]
        queue.close()
    return records, executor, multiplexer


class TestChaosInvariants:
    def test_faulted_run_terminates_dedups_and_matches_fault_free(self, tmp_path):
        plan = FaultPlan(
            11,
            worker_raises=0.15,
            worker_hangs=0.1,
            queue_locks=0.1,
            hang_seconds=0.02,
            max_faults_per_kind=12,
        )
        chaotic, executor, _ = run_jobs(tmp_path / "chaos", plan=plan)
        baseline, _, _ = run_jobs(tmp_path / "calm")

        # the run proves nothing unless faults actually fired
        assert plan.injected["raise"] > 0
        assert plan.injected["lock"] > 0

        # 1) every job terminated — and with this retry budget, cleanly
        assert [record.state for record in chaotic] == ["done", "done"]

        # 2) no candidate trained twice: two identical sweeps under faults
        #    still cost exactly the unique candidate set — completed counts
        #    only real (non-faulted) evaluations, so retries that produced
        #    nothing don't hide double work
        assert executor.completed == UNIQUE_CANDIDATES

        # 3) faults changed nothing about the science: identical results
        for noisy, calm in zip(chaotic, baseline):
            noisy_result = SearchResult.from_dict(noisy.result)
            calm_result = SearchResult.from_dict(calm.result)
            assert noisy_result.best_tokens == calm_result.best_tokens
            assert noisy_result.best_energy == calm_result.best_energy
            assert noisy_result.num_candidates == calm_result.num_candidates

    def test_lock_storm_costs_latency_not_slots(self, tmp_path):
        plan = FaultPlan(23, queue_locks=0.3, max_faults_per_kind=40)
        records, _, multiplexer = run_jobs(tmp_path, plan=plan, specs=(SPEC,))
        assert plan.injected["lock"] > 0
        assert records[0].state == "done"
        # the storm was absorbed by retry, not by killing slot threads
        assert multiplexer.queue_retries > 0
        assert not multiplexer.slot_health()["dead"]

    def test_poison_spec_dead_letters_instead_of_looping(self, tmp_path):
        queue = JobQueue(
            tmp_path, lease_seconds=1.0, max_attempts=3, backoff_base=0.01
        )
        job_id = queue.submit({"workload": "bogus:1", "depths": 1, "config": {}})
        with SweepMultiplexer(queue, max_concurrent=1) as multiplexer:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                record = queue.get(job_id)
                if record.state in TERMINAL_STATES:
                    break
                time.sleep(0.05)
        assert record.state == "failed"
        assert record.error.startswith("dead-letter")
        assert record.attempts == 3
        assert multiplexer.sweeps_failed == 1
        queue.close()


class TestCancellation:
    def test_running_sweep_cancels_within_a_depth_batch(self, tmp_path):
        """Cancel must land at the next checkpoint — between evaluations —
        not after the whole multi-depth sweep finishes."""
        queue = JobQueue(tmp_path, lease_seconds=0.3)  # heartbeat every 0.1s
        spec = {
            "workload": workload_to_wire("er:2:7"),
            "depths": 3,
            "config": Config(
                k_min=1, k_max=2, steps=120, num_samples=8, seed=1
            ).to_dict(),
        }
        job_id = queue.submit(spec)
        with SweepMultiplexer(queue, max_concurrent=1) as multiplexer:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if queue.get(job_id).state == "running":
                    break
                time.sleep(0.02)
            else:
                pytest.fail("job never started running")
            assert queue.cancel(job_id) == "cancelling"
            cancelled_at = time.monotonic()
            while time.monotonic() < deadline:
                if queue.get(job_id).state in TERMINAL_STATES:
                    break
                time.sleep(0.02)
        record = queue.get(job_id)
        assert record.state == "cancelled"
        # a 3-depth, 24-candidate, 120-step sweep takes far longer than the
        # few seconds a heartbeat + one in-flight evaluation need
        assert time.monotonic() - cancelled_at < 15
        assert multiplexer.sweeps_cancelled == 1
        queue.close()
