"""SIGKILL a live service mid-sweep; a restart must finish the job.

The satellite acceptance path for the lease layer: no clean shutdown, no
requeue-on-close — the process is gone with the lease still held. The
restarted service reclaims the job when the lease expires, and the first
process's flushed candidate evaluations come back as cache hits, so the
re-run pays only for the unfinished tail.
"""

import json
import os
import re
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Config, connect

SRC = Path(__file__).resolve().parents[2] / "src"

SPEC_CONFIG = Config(k_min=1, k_max=2, steps=400, num_samples=8, seed=1)


def spawn_serve(service_dir):
    """Start ``repro serve`` on an ephemeral port; returns (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dir", str(service_dir),
            "--port", "0",
            "--max-concurrent", "1",
            "--workers", "2",
            "--lease-seconds", "2",
        ],
        env={**os.environ, "PYTHONPATH": str(SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", line)
    if match is None:
        proc.kill()
        pytest.fail(f"serve did not announce its URL: {line!r}")
    return proc, match.group(0)


def flushed_rows(service_dir) -> int:
    path = Path(service_dir) / "cache" / "results.sqlite"
    if not path.exists():
        return 0
    with sqlite3.connect(str(path)) as conn:
        try:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        except sqlite3.OperationalError:
            return 0  # schema not committed yet


def test_sigkilled_service_job_recovers_via_lease_expiry(tmp_path):
    first, url = spawn_serve(tmp_path)
    try:
        client = connect(url)
        job_id = client.submit("er:2:7", depths=2, config=SPEC_CONFIG)

        # Wait for real progress: at least one flushed batch of candidate
        # results in the shared cache, with the sweep still running.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if flushed_rows(tmp_path) >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("no candidate results flushed within 60s")
        state = client.status(job_id)["state"]
        if state != "running":
            pytest.skip(f"sweep already {state}; no mid-flight window to kill")
        recovered_rows = flushed_rows(tmp_path)
    finally:
        first.kill()  # SIGKILL: no drain, no requeue, lease left dangling
        first.wait(timeout=30)

    second, url = spawn_serve(tmp_path)
    try:
        client = connect(url)
        # Still leased by the dead process until the 2s lease expires; the
        # restarted multiplexer then reclaims it and runs it to completion.
        result = client.wait(job_id, timeout=180)
        status = client.status(job_id)
        assert status["state"] == "done"
        assert status["attempts"] == 2  # first claim + the reclaim
        assert result.num_candidates == 16
        # the first process's flushed work was reused, not re-trained
        assert result.config["cache_hits"] >= recovered_rows
        assert result.config["cache_hits"] > 0
    finally:
        second.send_signal(signal.SIGINT)
        try:
            second.wait(timeout=30)
        except subprocess.TimeoutExpired:
            second.kill()
            second.wait(timeout=30)


def test_serve_announces_hardening_knobs_in_help():
    """The runbook's knobs must exist on the CLI (cheap drift guard)."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--help"],
        env={**os.environ, "PYTHONPATH": str(SRC)},
        capture_output=True,
        text=True,
        timeout=60,
    ).stdout
    for flag in (
        "--lease-seconds", "--max-attempts", "--max-queue-depth",
        "--max-queued-per-tenant", "--max-running-per-tenant",
        "--drain-timeout", "--tenant-weight",
    ):
        assert flag in out


def test_submit_payload_shape_is_stable(tmp_path):
    """The wire contract documented in docs/service.md: tenant/priority are
    top-level submit fields, also derivable from Config."""
    config = Config(tenant="alice", priority=3)
    payload = config.to_dict()
    assert payload["tenant"] == "alice"
    assert payload["priority"] == 3
    assert json.loads(json.dumps(payload)) == payload  # JSON-safe
