"""SweepMultiplexer: concurrent sweeps over one fleet and one cache."""

import time

from repro.api import Config
from repro.core.cache import ResultCache
from repro.parallel.async_executor import AsyncExecutor
from repro.service.jobs import JobQueue
from repro.service.multiplexer import SweepMultiplexer

#: small but non-trivial: 6 candidates, 2 graphs, quick optimizer budget
SPEC = {
    "workload": "er:2:7",
    "depths": 1,
    "config": Config(k_min=2, k_max=2, steps=5, num_samples=6, seed=1).to_dict(),
}


def wait_until(queue, job_ids, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = [queue.get(job_id) for job_id in job_ids]
        if all(r.state in ("done", "failed") for r in records):
            return records
        time.sleep(0.05)
    raise TimeoutError([queue.get(job_id).state for job_id in job_ids])


class TestExecution:
    def test_runs_a_job_end_to_end(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            with SweepMultiplexer(queue, max_concurrent=1):
                (record,) = wait_until(queue, [job_id])
            assert record.state == "done", record.error
            assert record.result["format"] == "repro-search-result-v3"
            evaluated = sum(
                len(d["evaluations"]) for d in record.result["depth_results"]
            )
            assert evaluated == 6

    def test_bad_spec_fails_the_job_not_the_slot(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            bad = queue.submit({"workload": "nonsense:1", "depths": 1})
            good = queue.submit(SPEC)
            with SweepMultiplexer(queue, max_concurrent=1) as mux:
                bad_rec, good_rec = wait_until(queue, [bad, good])
            assert bad_rec.state == "failed"
            assert "nonsense" in bad_rec.error
            assert good_rec.state == "done", good_rec.error
            assert mux.sweeps_failed == 1
            assert mux.sweeps_completed == 1


class TestSharedCache:
    def test_concurrent_identical_sweeps_share_one_cache(self, tmp_path):
        """The ISSUE's acceptance demo: two sweeps over the same workload
        fingerprint, one shared fleet, one shared cache — identical
        results, and the hit accounting proves candidates were trained
        once and shared, not evaluated twice."""
        with (
            JobQueue(tmp_path) as queue,
            ResultCache(tmp_path / "cache", shared=True, flush_every=2) as cache,
            AsyncExecutor(2) as executor,
        ):
            first = queue.submit(SPEC)
            second = queue.submit(SPEC)
            with SweepMultiplexer(
                queue, executor=executor, cache=cache, max_concurrent=2
            ):
                records = wait_until(queue, [first, second])

            assert [r.state for r in records] == ["done", "done"], [
                r.error for r in records
            ]
            a, b = (r.result for r in records)
            # single-sweep-identical results
            assert a["best_energy"] == b["best_energy"]
            assert a["best_tokens"] == b["best_tokens"]
            energies = [
                sorted(e["energy"] for e in r["depth_results"][0]["evaluations"])
                for r in (a, b)
            ]
            assert energies[0] == energies[1]  # every candidate, not just the best
            # every candidate evaluated exactly once across both sweeps
            hits = [r["config"]["cache_hits"] for r in (a, b)]
            misses = [r["config"]["cache_misses"] for r in (a, b)]
            assert sum(misses) == 6  # the candidate space, paid once total
            assert sum(hits) == 6  # ...and shared once
            assert sum(hits) + sum(misses) == 2 * 6

    def test_sequential_sweeps_reuse_the_store(self, tmp_path):
        with (
            JobQueue(tmp_path) as queue,
            ResultCache(tmp_path / "cache", shared=True) as cache,
        ):
            with SweepMultiplexer(queue, cache=cache, max_concurrent=1):
                first = queue.submit(SPEC)
                (rec1,) = wait_until(queue, [first])
                second = queue.submit(SPEC)
                (rec2,) = wait_until(queue, [second])
            assert rec1.result["config"]["cache_misses"] == 6
            assert rec2.result["config"]["cache_hits"] == 6
            assert rec2.result["config"]["cache_misses"] == 0


class TestFairness:
    def test_tenants_interleave_instead_of_fifo(self, tmp_path):
        """4 jobs from tenant a submitted before 2 from tenant b: strict
        oldest-first would run all of a's first; weighted round-robin puts
        both of b's jobs in the first four claims."""
        with (
            JobQueue(tmp_path) as queue,
            ResultCache(tmp_path / "cache", shared=True) as cache,
        ):
            ids = [queue.submit(SPEC, tenant="a") for _ in range(4)]
            ids += [queue.submit(SPEC, tenant="b") for _ in range(2)]
            with SweepMultiplexer(queue, cache=cache, max_concurrent=1):
                records = wait_until(queue, ids)
            assert all(r.state == "done" for r in records), [
                r.error for r in records
            ]
            started = sorted(records, key=lambda r: r.started_at)
            first_four = [r.tenant for r in started[:4]]
            assert first_four.count("b") == 2

    def test_max_running_per_tenant_caps_slot_share(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            ids = [queue.submit(SPEC, tenant="hog") for _ in range(3)]
            with SweepMultiplexer(
                queue, max_concurrent=2, max_running_per_tenant=1
            ):
                deadline = time.monotonic() + 120
                peak = 0
                while time.monotonic() < deadline:
                    counts = queue.counts_by_tenant().get("hog", {})
                    peak = max(peak, counts.get("running", 0))
                    if counts.get("done", 0) == 3:
                        break
                    time.sleep(0.02)
            assert peak == 1  # never two slots on one tenant
            assert [queue.get(i).state for i in ids] == ["done"] * 3


class TestGracefulDrain:
    def test_drain_deadline_requeues_the_job_unharmed(self, tmp_path):
        slow = {
            "workload": "er:2:7",
            "depths": 3,
            "config": Config(
                k_min=1, k_max=2, steps=150, num_samples=8, seed=1
            ).to_dict(),
        }
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(slow)
            mux = SweepMultiplexer(queue, max_concurrent=1, drain_timeout=0.2)
            mux.start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if queue.get(job_id).state == "running":
                    break
                time.sleep(0.02)
            mux.stop()  # drain expires long before the 24-candidate sweep
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.attempts == 0  # the aborted attempt was refunded
            assert mux.sweeps_requeued == 1


class TestLifecycle:
    def test_stop_is_clean_with_empty_queue(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            mux = SweepMultiplexer(queue, max_concurrent=2, poll_interval=0.01)
            mux.start()
            time.sleep(0.05)
            mux.stop()

    def test_start_twice_raises(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            with SweepMultiplexer(queue, max_concurrent=1) as mux:
                try:
                    mux.start()
                except RuntimeError as error:
                    assert "started" in str(error)
                else:  # pragma: no cover - the assertion above must fire
                    raise AssertionError("second start() did not raise")
