"""JobQueue: persistence, atomic claims, leases, retry, cancellation."""

import threading
import time

import pytest

from repro.service.jobs import JOB_STATES, TERMINAL_STATES, JobQueue

SPEC = {"workload": "er:2", "depths": 1, "config": {}}


def fast_queue(tmp_path, **kwargs):
    """A queue with sub-second lease/backoff so recovery paths are testable."""
    defaults = dict(lease_seconds=0.2, backoff_base=0.01, backoff_cap=0.05)
    return JobQueue(tmp_path, **{**defaults, **kwargs})


class TestLifecycle:
    def test_submit_claim_done_roundtrip(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.spec == SPEC
            assert record.tenant == "default"
            assert record.attempts == 0

            claimed = queue.claim_next()
            assert claimed.id == job_id
            assert claimed.state == "running"
            assert claimed.started_at is not None
            assert claimed.attempts == 1
            assert claimed.lease_expires is not None

            assert queue.mark_done(job_id, {"best": 1.0})
            finished = queue.get(job_id)
            assert finished.state == "done"
            assert finished.result == {"best": 1.0}
            assert finished.finished_at is not None
            assert finished.lease_expires is None

    def test_mark_failed_keeps_error(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next()
            queue.mark_failed(job_id, "ValueError: boom")
            record = queue.get(job_id)
            assert record.state == "failed"
            assert "boom" in record.error
            assert record.result is None

    def test_finish_unknown_id_raises(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            with pytest.raises(KeyError):
                queue.mark_done("nope", {})

    def test_get_unknown_id_returns_none(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            assert queue.get("nope") is None


class TestOrderingAndCounts:
    def test_claims_come_out_oldest_first(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            ids = [queue.submit({**SPEC, "n": i}) for i in range(3)]
            claimed = [queue.claim_next().id for _ in range(3)]
            assert claimed == ids
            assert queue.claim_next() is None

    def test_priority_overtakes_the_backlog(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            low = queue.submit(SPEC)
            high = queue.submit(SPEC, priority=5)
            assert queue.claim_next().id == high
            assert queue.claim_next().id == low

    def test_tenant_filter_and_counts(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            queue.submit(SPEC, tenant="alice")
            bob = queue.submit(SPEC, tenant="bob")
            assert sorted(queue.claimable_tenants()) == ["alice", "bob"]
            assert queue.claim_next(tenant="bob").id == bob
            assert queue.claimable_tenants() == ["alice"]
            by_tenant = queue.counts_by_tenant()
            assert by_tenant["alice"]["queued"] == 1
            assert by_tenant["bob"]["running"] == 1

    def test_counts_zero_filled(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            assert queue.counts() == dict.fromkeys(JOB_STATES, 0)
            queue.submit(SPEC)
            queue.submit(SPEC)
            queue.claim_next()
            counts = queue.counts()
            assert counts["queued"] == 1
            assert counts["running"] == 1
            assert len(queue) == 2

    def test_concurrent_claims_never_double_claim(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            for i in range(20):
                queue.submit({**SPEC, "n": i})
            claimed = []
            lock = threading.Lock()

            def worker():
                while True:
                    job = queue.claim_next()
                    if job is None:
                        return
                    with lock:
                        claimed.append(job.id)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(claimed) == 20
            assert len(set(claimed)) == 20


class TestLeases:
    def test_leased_job_is_not_reclaimable_before_expiry(self, tmp_path):
        with fast_queue(tmp_path, lease_seconds=30.0) as queue:
            queue.submit(SPEC)
            assert queue.claim_next(owner="one") is not None
            assert queue.claim_next(owner="two") is None

    def test_expired_lease_is_reclaimed_by_a_live_owner(self, tmp_path):
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="wedged")
            time.sleep(0.25)  # lease_seconds=0.2 elapses, no heartbeat
            reclaimed = queue.claim_next(owner="live")
            assert reclaimed.id == job_id
            assert reclaimed.owner == "live"
            assert reclaimed.attempts == 2

    def test_heartbeat_renews_the_lease(self, tmp_path):
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="slot")
            for _ in range(4):
                time.sleep(0.1)
                assert queue.heartbeat(job_id, "slot") == "ok"
            # 0.4s elapsed > lease_seconds, but renewals kept it alive
            assert queue.claim_next(owner="thief") is None

    def test_heartbeat_reports_lost_after_reclaim(self, tmp_path):
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="wedged")
            time.sleep(0.25)
            queue.claim_next(owner="live")
            assert queue.heartbeat(job_id, "wedged") == "lost"
            assert queue.heartbeat(job_id, "live") == "ok"

    def test_stale_owner_cannot_clobber_the_new_outcome(self, tmp_path):
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="wedged")
            time.sleep(0.25)
            queue.claim_next(owner="live")
            assert queue.mark_done(job_id, {"late": True}, owner="wedged") is False
            assert queue.get(job_id).state == "running"
            assert queue.mark_done(job_id, {"real": True}, owner="live")
            assert queue.get(job_id).result == {"real": True}


class TestRetryAndDeadLetter:
    def test_record_failure_requeues_with_backoff(self, tmp_path):
        with fast_queue(tmp_path, backoff_base=0.15, max_attempts=3) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="slot")
            assert queue.record_failure(job_id, "boom", owner="slot") == "queued"
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.error == "boom"
            assert record.not_before > time.time()
            assert queue.claim_next() is None  # backoff still running
            time.sleep(0.2)
            assert queue.claim_next().id == job_id

    def test_attempt_budget_dead_letters(self, tmp_path):
        with fast_queue(tmp_path, max_attempts=2) as queue:
            job_id = queue.submit(SPEC)
            for attempt in range(2):
                time.sleep(0.03)  # clear the previous attempt's backoff
                assert queue.claim_next(owner="slot").id == job_id
                outcome = queue.record_failure(job_id, f"boom {attempt}", owner="slot")
            assert outcome == "failed"
            record = queue.get(job_id)
            assert record.state == "failed"
            assert record.error.startswith("dead-letter")
            assert record.attempts == 2

    def test_claim_dead_letters_an_exhausted_expired_job(self, tmp_path):
        """A job whose holder died on its last allowed attempt must not run
        again: the reclaim itself dead-letters it."""
        with fast_queue(tmp_path, max_attempts=1) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="died")
            time.sleep(0.25)
            assert queue.claim_next(owner="live") is None
            record = queue.get(job_id)
            assert record.state == "failed"
            assert record.error.startswith("dead-letter")

    def test_requeue_refunds_the_attempt(self, tmp_path):
        with fast_queue(tmp_path, max_attempts=1) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="slot")
            assert queue.requeue(job_id, owner="slot")
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.attempts == 0
            # a full attempt budget remains: the job can still run and win
            assert queue.claim_next().id == job_id
            assert queue.mark_done(job_id, {"ok": True})


class TestCancellation:
    def test_cancel_queued_is_immediate(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            assert queue.cancel(job_id) == "cancelled"
            assert queue.get(job_id).state == "cancelled"
            assert queue.claim_next() is None

    def test_cancel_running_is_cooperative(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="slot")
            assert queue.cancel(job_id) == "cancelling"
            assert queue.get(job_id).state == "running"
            assert queue.heartbeat(job_id, "slot") == "cancel"
            assert queue.mark_cancelled(job_id, owner="slot")
            assert queue.get(job_id).state == "cancelled"

    def test_cancelled_while_holder_was_dead_resolves_at_reclaim(self, tmp_path):
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="died")
            queue.cancel(job_id)
            time.sleep(0.25)
            assert queue.claim_next(owner="live") is None
            assert queue.get(job_id).state == "cancelled"

    def test_cancel_terminal_reports_state_unchanged(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next()
            queue.mark_done(job_id, {})
            assert queue.cancel(job_id) == "done"
            assert queue.get(job_id).state == "done"

    def test_cancel_unknown_id_raises(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            with pytest.raises(KeyError):
                queue.cancel("nope")


class TestPersistence:
    def test_queue_survives_reopen(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
        with JobQueue(tmp_path) as queue:
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.spec == SPEC

    def test_killed_holders_job_recovers_via_lease_expiry(self, tmp_path):
        """A job mid-run when the service died stays leased across the
        reopen and becomes claimable once the lease expires; its partial
        work lives in the shared result cache."""
        with fast_queue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next(owner="killed")
            # no mark_done — simulate the process dying here
        with fast_queue(tmp_path) as queue:
            assert queue.get(job_id).state == "running"  # lease still held
            time.sleep(0.25)
            reclaimed = queue.claim_next(owner="restarted")
            assert reclaimed.id == job_id
            assert reclaimed.owner == "restarted"

    def test_legacy_leaseless_running_rows_requeue_at_open(self, tmp_path):
        """Pre-lease stores have running rows with no lease deadline; those
        can never expire, so the reopen itself requeues them."""
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next()
            queue._conn.execute(
                "UPDATE jobs SET lease_expires = NULL WHERE id = ?", (job_id,)
            )
            queue._conn.commit()
        with JobQueue(tmp_path) as queue:
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.started_at is None
            assert queue.claim_next().id == job_id

    def test_finished_jobs_stay_finished_across_reopen(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            done_id = queue.submit(SPEC)
            queue.claim_next()
            queue.mark_done(done_id, {"ok": True})
        with JobQueue(tmp_path) as queue:
            assert queue.get(done_id).state == "done"
            assert queue.claim_next() is None
            assert set(TERMINAL_STATES) <= set(queue.counts())
