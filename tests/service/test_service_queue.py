"""JobQueue: persistence, atomic claims, crash recovery."""

import threading

import pytest

from repro.service.jobs import JOB_STATES, JobQueue

SPEC = {"workload": "er:2", "depths": 1, "config": {}}


class TestLifecycle:
    def test_submit_claim_done_roundtrip(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.spec == SPEC

            claimed = queue.claim_next()
            assert claimed.id == job_id
            assert claimed.state == "running"
            assert claimed.started_at is not None

            queue.mark_done(job_id, {"best": 1.0})
            finished = queue.get(job_id)
            assert finished.state == "done"
            assert finished.result == {"best": 1.0}
            assert finished.finished_at is not None

    def test_mark_failed_keeps_error(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next()
            queue.mark_failed(job_id, "ValueError: boom")
            record = queue.get(job_id)
            assert record.state == "failed"
            assert "boom" in record.error
            assert record.result is None

    def test_finish_unknown_id_raises(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            with pytest.raises(KeyError):
                queue.mark_done("nope", {})

    def test_get_unknown_id_returns_none(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            assert queue.get("nope") is None


class TestOrderingAndCounts:
    def test_claims_come_out_oldest_first(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            ids = [queue.submit({**SPEC, "n": i}) for i in range(3)]
            claimed = [queue.claim_next().id for _ in range(3)]
            assert claimed == ids
            assert queue.claim_next() is None

    def test_counts_zero_filled(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            assert queue.counts() == dict.fromkeys(JOB_STATES, 0)
            queue.submit(SPEC)
            queue.submit(SPEC)
            queue.claim_next()
            counts = queue.counts()
            assert counts["queued"] == 1
            assert counts["running"] == 1
            assert len(queue) == 2

    def test_concurrent_claims_never_double_claim(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            for i in range(20):
                queue.submit({**SPEC, "n": i})
            claimed = []
            lock = threading.Lock()

            def worker():
                while True:
                    job = queue.claim_next()
                    if job is None:
                        return
                    with lock:
                        claimed.append(job.id)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(claimed) == 20
            assert len(set(claimed)) == 20


class TestPersistence:
    def test_queue_survives_reopen(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
        with JobQueue(tmp_path) as queue:
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.spec == SPEC

    def test_running_jobs_requeue_after_crash(self, tmp_path):
        """A job mid-run when the service died goes back to the queue on
        the next open; its partial work lives in the shared result cache."""
        with JobQueue(tmp_path) as queue:
            job_id = queue.submit(SPEC)
            queue.claim_next()
            # no mark_done — simulate the process dying here
        with JobQueue(tmp_path) as queue:
            record = queue.get(job_id)
            assert record.state == "queued"
            assert record.started_at is None
            assert queue.claim_next().id == job_id

    def test_finished_jobs_stay_finished_across_reopen(self, tmp_path):
        with JobQueue(tmp_path) as queue:
            done_id = queue.submit(SPEC)
            queue.claim_next()
            queue.mark_done(done_id, {"ok": True})
        with JobQueue(tmp_path) as queue:
            assert queue.get(done_id).state == "done"
            assert queue.claim_next() is None
