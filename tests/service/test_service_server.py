"""SearchService + HTTP API: endpoint round-trips on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Config, ServiceError, connect
from repro.service.server import SearchService, make_http_server

SPEC = {
    "workload": "er:2:7",
    "depths": 1,
    "config": Config(k_min=2, k_max=2, steps=5, num_samples=6, seed=1).to_dict(),
}


@pytest.fixture
def service(tmp_path):
    """A running service + HTTP front end on an ephemeral port."""
    svc = SearchService(tmp_path, max_concurrent=2, workers=2)
    server = make_http_server(svc)  # port 0 → a free ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    with svc:
        yield svc, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def http(method, url, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_submit_status_result_roundtrip(self, service):
        _, base = service
        status, body = http("POST", base + "/submit", SPEC)
        assert status == 202
        job_id = body["id"]

        client = connect(base)
        result = client.wait(job_id, timeout=120)
        assert result.num_candidates == 6
        assert result.best_tokens  # a real winner came back

        status_body = client.status(job_id)
        assert status_body["state"] == "done"
        assert status_body["num_graphs"] == 2
        assert status_body["depths"] == 1

    def test_healthz_reports_fleet_and_cache(self, service):
        _, base = service
        status, body = http("GET", base + "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["executor"] == "async"
        assert body["workers"] == 2
        assert set(body["queue"]) == {"queued", "running", "done", "failed"}
        assert {"hits", "misses", "evictions"} <= set(body["cache"])

    def test_result_before_done_is_409(self, service):
        svc, base = service
        # submit against a stopped multiplexer so the job stays queued
        job_id = svc.submit(SPEC)["id"]
        status, body = http("GET", base + f"/result/{job_id}")
        if status != 409:  # the sweep may already have finished — then 200
            assert status == 200
        else:
            assert "not ready" in body["error"]

    def test_unknown_job_is_404(self, service):
        _, base = service
        assert http("GET", base + "/status/nope")[0] == 404
        assert http("GET", base + "/result/nope")[0] == 404

    def test_unknown_route_is_404(self, service):
        _, base = service
        assert http("GET", base + "/bogus")[0] == 404
        assert http("POST", base + "/bogus")[0] == 404


class TestValidation:
    def test_bad_workload_rejected_at_submit(self, service):
        _, base = service
        status, body = http("POST", base + "/submit", {"workload": "bogus:1"})
        assert status == 400
        assert "workload" in body["error"]

    def test_unknown_config_field_rejected_at_submit(self, service):
        _, base = service
        status, body = http(
            "POST", base + "/submit", {"workload": "er:1", "config": {"nope": 1}}
        )
        assert status == 400
        assert "nope" in body["error"]

    def test_bad_depths_rejected_at_submit(self, service):
        _, base = service
        status, _ = http("POST", base + "/submit", {"workload": "er:1", "depths": 0})
        assert status == 400

    def test_invalid_json_body_is_400(self, service):
        _, base = service
        request = urllib.request.Request(
            base + "/submit", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestClient:
    def test_client_submit_and_wait(self, service):
        _, base = service
        client = connect(base)
        config = Config(**{**Config().to_dict(), **SPEC["config"]})
        job_id = client.submit("er:2:7", depths=1, config=config)
        result = client.wait(job_id, timeout=120)
        assert result.num_candidates == 6

    def test_client_surfaces_service_errors(self, service):
        _, base = service
        client = connect(base)
        with pytest.raises(ServiceError) as info:
            client.status("nope")
        assert info.value.status == 404

    def test_two_clients_share_the_cache(self, service):
        """The end-to-end acceptance path over HTTP: identical sweeps from
        two clients are answered once from the fleet, once from sharing."""
        _, base = service
        one, two = connect(base), connect(base)
        config = Config(**SPEC["config"])
        first = one.submit("er:2:7", depths=1, config=config)
        second = two.submit("er:2:7", depths=1, config=config)
        results = [c.wait(j, timeout=120) for c, j in ((one, first), (two, second))]
        assert results[0].best_energy == results[1].best_energy
        total_hits = sum(r.config["cache_hits"] for r in results)
        total_misses = sum(r.config["cache_misses"] for r in results)
        assert total_misses == 6
        assert total_hits == 6
