"""SearchService + HTTP API: endpoint round-trips on an ephemeral port."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Config, ServiceError, connect
from repro.service.server import SearchService, make_http_server

SPEC = {
    "workload": "er:2:7",
    "depths": 1,
    "config": Config(k_min=2, k_max=2, steps=5, num_samples=6, seed=1).to_dict(),
}


@pytest.fixture
def service(tmp_path):
    """A running service + HTTP front end on an ephemeral port."""
    svc = SearchService(tmp_path, max_concurrent=2, workers=2)
    server = make_http_server(svc)  # port 0 → a free ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    with svc:
        yield svc, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def http(method, url, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_submit_status_result_roundtrip(self, service):
        _, base = service
        status, body = http("POST", base + "/submit", SPEC)
        assert status == 202
        job_id = body["id"]

        client = connect(base)
        result = client.wait(job_id, timeout=120)
        assert result.num_candidates == 6
        assert result.best_tokens  # a real winner came back

        status_body = client.status(job_id)
        assert status_body["state"] == "done"
        assert status_body["num_graphs"] == 2
        assert status_body["depths"] == 1

    def test_healthz_reports_fleet_and_cache(self, service):
        _, base = service
        status, body = http("GET", base + "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["executor"] == "async"
        assert body["workers"] == 2
        assert set(body["queue"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }
        assert {"hits", "misses", "evictions"} <= set(body["cache"])
        assert body["slots"] == {"configured": 2, "alive": 2, "dead": []}

    def test_healthz_flags_a_dead_slot_thread(self, tmp_path):
        svc = SearchService(tmp_path, max_concurrent=1, workers=1)
        svc.queue.submit({"workload": "er:1", "depths": 1, "config": {}})
        # A slot loop that dies of anything but transient sqlite contention
        # is a real bug; it must surface in /healthz, not vanish silently.
        def explode(*args, **kwargs):
            raise RuntimeError("claim machinery broke")

        svc.queue.claimable_tenants = explode
        svc.start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                health = svc.healthz()
                if not health["ok"]:
                    break
                time.sleep(0.05)
            assert health["ok"] is False
            assert health["slots"]["alive"] == 0
            assert "claim machinery broke" in health["slots"]["dead"][0]["error"]
        finally:
            del svc.queue.claimable_tenants
            svc.stop()

    def test_result_before_done_is_409(self, service):
        svc, base = service
        # submit against a stopped multiplexer so the job stays queued
        job_id = svc.submit(SPEC)["id"]
        status, body = http("GET", base + f"/result/{job_id}")
        if status != 409:  # the sweep may already have finished — then 200
            assert status == 200
        else:
            assert "not ready" in body["error"]

    def test_unknown_job_is_404(self, service):
        _, base = service
        assert http("GET", base + "/status/nope")[0] == 404
        assert http("GET", base + "/result/nope")[0] == 404

    def test_unknown_route_is_404(self, service):
        _, base = service
        assert http("GET", base + "/bogus")[0] == 404
        assert http("POST", base + "/bogus")[0] == 404


class TestValidation:
    def test_bad_workload_rejected_at_submit(self, service):
        _, base = service
        status, body = http("POST", base + "/submit", {"workload": "bogus:1"})
        assert status == 400
        assert "workload" in body["error"]

    def test_unknown_config_field_rejected_at_submit(self, service):
        _, base = service
        status, body = http(
            "POST", base + "/submit", {"workload": "er:1", "config": {"nope": 1}}
        )
        assert status == 400
        assert "nope" in body["error"]

    def test_bad_depths_rejected_at_submit(self, service):
        _, base = service
        status, _ = http("POST", base + "/submit", {"workload": "er:1", "depths": 0})
        assert status == 400

    def test_bad_surrogate_knobs_rejected_at_submit(self, service):
        _, base = service
        status, body = http(
            "POST",
            base + "/submit",
            {
                "workload": "er:1",
                "config": {"surrogate": True, "surrogate_keep": 0.0},
            },
        )
        assert status == 400
        assert "keep_fraction" in body["error"]
        status, body = http(
            "POST",
            base + "/submit",
            {
                "workload": "er:1",
                "config": {"surrogate": True, "explore_floor": 2.0},
            },
        )
        assert status == 400
        assert "explore_floor" in body["error"]

    def test_surrogate_config_accepted_at_submit(self, service):
        _, base = service
        spec = dict(SPEC)
        spec["config"] = Config(
            k_min=2, k_max=2, steps=5, num_samples=6, seed=1, surrogate=True
        ).to_dict()
        status, _ = http("POST", base + "/submit", spec)
        assert status == 202

    def test_invalid_json_body_is_400(self, service):
        _, base = service
        request = urllib.request.Request(
            base + "/submit", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestHardening:
    @pytest.fixture
    def cold_service(self, tmp_path):
        """A bound HTTP front end whose multiplexer never starts: submitted
        jobs stay queued, so admission and cancellation are deterministic."""
        svc = SearchService(
            tmp_path,
            max_concurrent=1,
            workers=1,
            max_queue_depth=2,
            max_queued_per_tenant=1,
        )
        server = make_http_server(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield svc, f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        svc.multiplexer._slots = []  # never started; stop() would object
        svc._executor.close()
        svc.cache.close()
        svc.queue.close()

    def test_full_queue_is_429_with_retry_after(self, cold_service):
        _, base = cold_service
        assert http("POST", base + "/submit", {**SPEC, "tenant": "a"})[0] == 202
        assert http("POST", base + "/submit", {**SPEC, "tenant": "b"})[0] == 202
        request = urllib.request.Request(
            base + "/submit",
            data=json.dumps({**SPEC, "tenant": "c"}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 429
        assert int(info.value.headers["Retry-After"]) >= 1
        assert "queue full" in json.loads(info.value.read())["error"]

    def test_tenant_backlog_quota_is_429(self, cold_service):
        _, base = cold_service
        assert http("POST", base + "/submit", {**SPEC, "tenant": "alice"})[0] == 202
        status, body = http("POST", base + "/submit", {**SPEC, "tenant": "alice"})
        assert status == 429
        assert "alice" in body["error"]
        # another tenant still gets in: the quota is per tenant, not global
        assert http("POST", base + "/submit", {**SPEC, "tenant": "bob"})[0] == 202

    def test_cancel_queued_job_via_http(self, cold_service):
        svc, base = cold_service
        job_id = http("POST", base + "/submit", SPEC)[1]["id"]
        status, body = http("POST", base + f"/cancel/{job_id}")
        assert status == 200
        assert body == {"id": job_id, "state": "cancelled"}
        assert svc.queue.get(job_id).state == "cancelled"
        # a cancelled job's result is gone for good, like a failed one
        assert http("GET", base + f"/result/{job_id}")[0] == 410

    def test_cancel_unknown_job_is_404(self, cold_service):
        _, base = cold_service
        assert http("POST", base + "/cancel/nope")[0] == 404

    def test_client_wait_surfaces_the_failure_text(self, cold_service):
        svc, base = cold_service
        client = connect(base)
        job_id = client.submit("er:1", depths=1, tenant="failer")
        svc.queue.claim_next(owner="test", tenant="failer")
        svc.queue.mark_failed(job_id, "ValueError: kaboom", owner="test")
        with pytest.raises(ServiceError) as info:
            client.wait(job_id, timeout=5)
        assert "kaboom" in str(info.value)

    def test_client_cancel_and_wait_on_cancelled(self, cold_service):
        _, base = cold_service
        client = connect(base)
        job_id = client.submit("er:1", depths=1, tenant="canceller")
        assert client.cancel(job_id) == "cancelled"
        with pytest.raises(ServiceError) as info:
            client.wait(job_id, timeout=5)
        assert "cancelled" in str(info.value)

    def test_submit_carries_tenant_and_priority(self, cold_service):
        svc, base = cold_service
        _, body = http(
            "POST", base + "/submit", {**SPEC, "tenant": "alice", "priority": 7}
        )
        record = svc.queue.get(body["id"])
        assert record.tenant == "alice"
        assert record.priority == 7


class TestClient:
    def test_client_submit_and_wait(self, service):
        _, base = service
        client = connect(base)
        config = Config(**{**Config().to_dict(), **SPEC["config"]})
        job_id = client.submit("er:2:7", depths=1, config=config)
        result = client.wait(job_id, timeout=120)
        assert result.num_candidates == 6

    def test_client_surfaces_service_errors(self, service):
        _, base = service
        client = connect(base)
        with pytest.raises(ServiceError) as info:
            client.status("nope")
        assert info.value.status == 404

    def test_two_clients_share_the_cache(self, service):
        """The end-to-end acceptance path over HTTP: identical sweeps from
        two clients are answered once from the fleet, once from sharing."""
        _, base = service
        one, two = connect(base), connect(base)
        config = Config(**SPEC["config"])
        first = one.submit("er:2:7", depths=1, config=config)
        second = two.submit("er:2:7", depths=1, config=config)
        results = [c.wait(j, timeout=120) for c, j in ((one, first), (two, second))]
        assert results[0].best_energy == results[1].best_energy
        total_hits = sum(r.config["cache_hits"] for r in results)
        total_misses = sum(r.config["cache_misses"] for r in results)
        assert total_misses == 6
        assert total_hits == 6


class TestObservability:
    """GET /metrics exposition and the status progress field."""

    def test_metrics_endpoint_round_trip(self, service):
        _, base = service
        client = connect(base)
        job_id = client.submit("er:2:7", depths=1, config=Config(**SPEC["config"]))
        client.wait(job_id, timeout=120)

        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode()
        # one exemplar per instrumented layer, scheduler histogram included
        assert "# TYPE repro_job_run_seconds histogram" in text
        assert 'repro_job_run_seconds_bucket{le="+Inf"} 6' in text
        assert "repro_jobs_completed_total 6" in text
        assert "repro_cache_misses_total 6" in text
        assert 'repro_queue_submitted_total{tenant="default"} 1' in text
        assert 'repro_sweeps_total{outcome="completed"} 1' in text
        assert "repro_executor_semaphore_wait_seconds_count" in text
        assert "repro_service_uptime_seconds" in text
        assert "repro_slots_configured 2" in text
        # Client.metrics() returns the same exposition text
        assert "repro_jobs_completed_total" in client.metrics()

    def test_progress_is_monotone_through_a_live_sweep(self, service):
        _, base = service
        client = connect(base)
        job_id = client.submit(
            "er:2:7",
            depths=2,
            config=Config(**{**SPEC["config"], "steps": 15}),
        )
        observed = []
        deadline = time.time() + 120
        while time.time() < deadline:
            status = client.status(job_id)
            progress = status.get("progress")
            if progress is not None:
                observed.append(
                    (progress["candidates_done"], progress["candidates_total"])
                )
            if status["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        done_values = [done for done, _ in observed]
        assert done_values == sorted(done_values)
        totals = [total for _, total in observed]
        assert totals == sorted(totals)  # denominator grows per depth
        # the terminal snapshot is complete and kept after the sweep ends
        final = client.progress(job_id)
        assert final["candidates_done"] == final["candidates_total"] == 12
        assert final["percent"] == 100.0
        assert final["finished_at"] is not None
        assert len(final["per_depth"]) == 2

    def test_finished_sweep_gauges_are_unregistered(self, service):
        svc, base = service
        client = connect(base)
        job_id = client.submit("er:2:7", depths=1, config=Config(**SPEC["config"]))
        client.wait(job_id, timeout=120)
        text = svc.metrics_text()
        assert f'job="{job_id}"' not in text  # label hygiene
        assert client.progress(job_id) is not None  # snapshot survives

    def test_queued_job_has_no_progress(self, tmp_path):
        svc = SearchService(tmp_path, max_concurrent=1, workers=1)
        try:
            job_id = svc.submit(SPEC)["id"]  # service never started
            assert "progress" not in svc.status(job_id)
        finally:
            svc.stop()
