"""Workload specs through the service: submit validation, per-problem runs.

The service accepts both forms a client can send — a family spec string
(``"maxsat:1:5"``) or the expanded graph dicts with the workload key folded
into the config (what ``Client.submit`` produces). Either way the executed
sweep must train the right problem and say so in its result config.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Config, connect
from repro.service.server import SearchService, ServiceRequestError, make_http_server
from repro.workloads import available_workloads

FAST = dict(k_min=1, k_max=1, steps=8, seed=1)


@pytest.fixture
def service(tmp_path):
    svc = SearchService(tmp_path, max_concurrent=2, workers=2)
    server = make_http_server(svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    with svc:
        yield svc, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def http(method, url, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestSubmitValidation:
    def test_spec_string_fills_the_config_workload(self, tmp_path):
        with SearchService(tmp_path) as svc:
            response = svc.submit(
                {"workload": "ising:1:5", "depths": 1, "config": Config(**FAST).to_dict()}
            )
            record = svc.queue.get(response["id"])
            assert record.spec["config"]["workload"] == "ising"

    def test_conflicting_workload_is_a_400(self, tmp_path):
        with SearchService(tmp_path) as svc:
            with pytest.raises(ServiceRequestError) as excinfo:
                svc.submit(
                    {
                        "workload": "ising:1:5",
                        "depths": 1,
                        "config": Config(workload="maxsat", **FAST).to_dict(),
                    }
                )
            assert excinfo.value.status == 400
            assert "ising" in str(excinfo.value)

    def test_unknown_config_workload_is_a_400(self, tmp_path):
        with SearchService(tmp_path) as svc:
            with pytest.raises(ServiceRequestError) as excinfo:
                svc.submit(
                    {
                        "workload": "er:1:5",
                        "depths": 1,
                        "config": {"workload": "knapsack"},
                    }
                )
            assert excinfo.value.status == 400


class TestWorkloadSweeps:
    def test_every_workload_runs_end_to_end(self, service):
        """One tiny sweep per registered workload through HTTP submit; the
        finished result carries the problem key and the QASM export."""
        svc, base = service
        client = connect(base)
        from repro.workloads import get_workload

        job_ids = {
            key: client.submit(
                f"{get_workload(key).family}:1:5", depths=1, config=Config(**FAST)
            )
            for key in available_workloads()
        }
        for key, job_id in job_ids.items():
            result = client.wait(job_id, timeout=120)
            assert result.config["workload"] == key
            assert result.depth_results[0].best_qasm.startswith("OPENQASM 2.0;")

    def test_http_submit_accepts_a_family_spec_directly(self, service):
        _, base = service
        status, body = http(
            "POST",
            base + "/submit",
            {"workload": "maxsat:1:5", "depths": 1, "config": Config(**FAST).to_dict()},
        )
        assert status == 202
        result = connect(base).wait(body["id"], timeout=120)
        assert result.config["workload"] == "maxsat"

    def test_distinct_workloads_do_not_share_cache_entries(self, service):
        """Same topology family sizes, different problems: the second sweep
        must be all cache misses, not hits from the first."""
        svc, base = service
        client = connect(base)
        first = client.wait(
            client.submit("er:1:5", depths=1, config=Config(**FAST)), timeout=120
        )
        second = client.wait(
            client.submit("wmaxcut:1:5", depths=1, config=Config(**FAST)), timeout=120
        )
        assert first.config["workload"] == "maxcut"
        assert second.config["workload"] == "wmaxcut"
        assert second.config["cache_hits"] == 0
