"""Array-backend dispatch: the compiled engine's GPU seam, tested on CPU.

The contract: any registered backend run through the *identical* compiled
program must be indistinguishable from the NumPy default — energies,
batches, gradients, and final states pinned to 1e-10 across the full
mixer token alphabet (the mock GPU computes on NumPy, so it is in fact
bit-identical) — while the mock backend's device accounting proves every
evaluation really flows through the seam (kernels launched, bytes
transferred) rather than through a stray module-level ``np``.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.mixers import MIXER_TOKENS
from repro.simulators.backends import (
    ArrayBackend,
    MockGPUArrayBackend,
    NumpyArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
)
from repro.simulators.compiled import compile_ansatz

ATOL = 1e-10


@pytest.fixture(scope="module")
def er6():
    return erdos_renyi_graph(6, 0.5, seed=21, require_connected=True)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_numpy_and_mock_gpu_always_registered(self):
        names = available_array_backends()
        assert "numpy" in names
        assert "mock_gpu" in names

    def test_cupy_registered_only_when_importable(self):
        has_cupy = importlib.util.find_spec("cupy") is not None
        assert ("cupy" in available_array_backends()) == has_cupy

    def test_get_by_name(self):
        assert isinstance(get_array_backend("numpy"), NumpyArrayBackend)
        assert isinstance(get_array_backend("mock_gpu"), MockGPUArrayBackend)

    def test_fresh_instance_per_get(self):
        """Stateful backends must not share counters across programs."""
        assert get_array_backend("mock_gpu") is not get_array_backend("mock_gpu")

    def test_instance_passes_through(self):
        backend = MockGPUArrayBackend()
        assert get_array_backend(backend) is backend

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="unknown array backend.*numpy"):
            get_array_backend("tpu")

    def test_registration_is_open(self):
        """The ROADMAP drop-in point: a new library registers by name."""

        class Custom(NumpyArrayBackend):
            pass

        Custom.name = "custom_test_backend"
        register_array_backend("custom_test_backend", Custom)
        try:
            assert "custom_test_backend" in available_array_backends()
            assert isinstance(
                get_array_backend("custom_test_backend"), Custom
            )
        finally:
            from repro.simulators import backends as module

            module._REGISTRY.pop("custom_test_backend")


class TestNumpyBackend:
    def test_xp_is_numpy(self):
        assert NumpyArrayBackend().xp is np

    def test_host_boundaries_are_identity(self):
        backend = NumpyArrayBackend()
        a = np.arange(4.0)
        assert backend.asarray(a) is a
        assert backend.to_host(a) is a

    def test_named_ops_match_numpy(self):
        backend = NumpyArrayBackend()
        a = np.arange(8.0).reshape(2, 4)
        np.testing.assert_array_equal(
            backend.einsum("ij->j", a), np.einsum("ij->j", a)
        )
        np.testing.assert_array_equal(
            backend.tensordot(a, a.T, axes=1), a @ a.T
        )
        np.testing.assert_array_equal(
            backend.take(a, np.array([1, 0]), axis=0), a[[1, 0]]
        )
        assert backend.moveaxis(a, 0, 1).shape == (4, 2)
        np.testing.assert_array_equal(backend.exp(a), np.exp(a))
        np.testing.assert_array_equal(backend.multiply(a, a), a * a)


# -- numpy vs mock-GPU equivalence over the token alphabet -------------------


def _pair(ansatz):
    """The same ansatz on the default and the mock-GPU backend."""
    return (
        AnsatzEnergy(ansatz, engine="compiled"),
        AnsatzEnergy(ansatz, engine="compiled", array_backend="mock_gpu"),
    )


@settings(max_examples=30, deadline=None)
@given(
    tokens=st.lists(st.sampled_from(MIXER_TOKENS), min_size=1, max_size=4),
    p=st.integers(1, 3),
    initial_hadamard=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_energy_identical_across_backends(tokens, p, initial_hadamard, seed):
    graph = cycle_graph(5)
    ansatz = build_qaoa_ansatz(
        graph, p, tuple(tokens), initial_hadamard=initial_hadamard
    )
    numpy_engine, mock_engine = _pair(ansatz)
    x = np.random.default_rng(seed).uniform(-np.pi, np.pi, ansatz.num_parameters)
    assert mock_engine.value(x) == pytest.approx(numpy_engine.value(x), abs=ATOL)


@settings(max_examples=15, deadline=None)
@given(
    tokens=st.lists(st.sampled_from(MIXER_TOKENS), min_size=1, max_size=3),
    seed=st.integers(0, 2**31 - 1),
)
def test_batched_energies_and_gradients_identical(tokens, seed):
    graph = cycle_graph(5)
    ansatz = build_qaoa_ansatz(graph, 2, tuple(tokens))
    numpy_engine, mock_engine = _pair(ansatz)
    X = np.random.default_rng(seed).uniform(
        -np.pi, np.pi, (4, ansatz.num_parameters)
    )
    np.testing.assert_allclose(
        mock_engine.values(X), numpy_engine.values(X), atol=ATOL
    )
    np.testing.assert_allclose(
        mock_engine.gradients(X), numpy_engine.gradients(X), atol=ATOL
    )


@pytest.mark.parametrize("token", MIXER_TOKENS)
def test_every_token_alone_matches_across_backends(token, er6):
    """Deterministic sweep of the full alphabet (the hypothesis runs above
    sample combinations; this pins every token individually)."""
    ansatz = build_qaoa_ansatz(er6, 2, (token,))
    numpy_engine, mock_engine = _pair(ansatz)
    rng = np.random.default_rng(hash(token) % 2**32)
    x = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    X = rng.uniform(-np.pi, np.pi, (3, ansatz.num_parameters))
    assert mock_engine.value(x) == pytest.approx(numpy_engine.value(x), abs=ATOL)
    np.testing.assert_allclose(
        mock_engine.values(X), numpy_engine.values(X), atol=ATOL
    )
    np.testing.assert_allclose(
        mock_engine.gradient(x), numpy_engine.gradient(x), atol=ATOL
    )
    np.testing.assert_allclose(
        mock_engine.final_state(x), numpy_engine.final_state(x), atol=ATOL
    )


def test_states_match_across_backends(er6):
    ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
    X = np.random.default_rng(5).uniform(-np.pi, np.pi, (3, ansatz.num_parameters))
    by_name = {
        name: compile_ansatz(ansatz, backend=name).states(X)
        for name in ("numpy", "mock_gpu")
    }
    assert isinstance(by_name["mock_gpu"], np.ndarray)
    np.testing.assert_allclose(by_name["mock_gpu"], by_name["numpy"], atol=ATOL)


# -- the mock backend's device accounting ------------------------------------


class TestMockGPUAccounting:
    def test_evaluation_launches_kernels_and_transfers(self, er6):
        ansatz = build_qaoa_ansatz(er6, 2, ("rx",))
        backend = MockGPUArrayBackend()
        program = compile_ansatz(ansatz, backend=backend)
        x = np.zeros(ansatz.num_parameters)
        program.energy(x)
        stats = backend.stats()
        assert stats["kernels"] > 0
        assert stats["bytes_to_device"] > 0
        assert stats["bytes_to_host"] > 0
        assert stats["device_seconds"] > 0

    def test_program_constants_upload_once(self, er6):
        """The _dev memo: repeat evaluations re-upload parameters, never
        the program's generator vectors / cut table."""
        ansatz = build_qaoa_ansatz(er6, 2, ("rx",))
        backend = MockGPUArrayBackend()
        program = compile_ansatz(ansatz, backend=backend)
        x = np.zeros(ansatz.num_parameters)
        program.energy(x)
        after_first = backend.stats()["bytes_to_device"]
        program.energy(x)
        per_repeat = backend.stats()["bytes_to_device"] - after_first
        assert per_repeat < after_first / 2, (
            "repeat evaluations re-upload program constants — the device "
            "memo is broken"
        )

    def test_reset_stats(self):
        backend = MockGPUArrayBackend()
        backend.asarray(np.zeros(16))
        backend.xp.exp(np.zeros(16))
        assert backend.stats()["kernels"] == 1
        backend.reset_stats()
        assert backend.stats() == {
            "kernels": 0.0,
            "elements": 0.0,
            "bytes_to_device": 0.0,
            "bytes_to_host": 0.0,
            "device_seconds": 0.0,
        }

    def test_namespace_forwards_non_callables(self):
        backend = MockGPUArrayBackend()
        assert backend.xp.pi == np.pi
        assert backend.xp.complex128 is np.complex128


class CountingBackend(NumpyArrayBackend):
    """NumPy with per-named-op call counters: overriding a named op must
    actually take effect in the engine's hot paths."""

    def __init__(self):
        self.calls: dict[str, int] = {}

    def _count(self, op):
        self.calls[op] = self.calls.get(op, 0) + 1

    def einsum(self, subscripts, *operands):
        self._count("einsum")
        return super().einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        self._count("tensordot")
        return super().tensordot(a, b, axes)

    def take(self, a, indices, axis=None):
        self._count("take")
        return super().take(a, indices, axis=axis)

    def moveaxis(self, a, source, destination):
        self._count("moveaxis")
        return super().moveaxis(a, source, destination)

    def exp(self, a):
        self._count("exp")
        return super().exp(a)

    def multiply(self, a, b, out=None):
        self._count("multiply")
        return super().multiply(a, b, out=out)


def test_named_ops_are_routed_through_the_backend(er6):
    """The protocol's named ops are the engine's dispatch points, not
    decoration: a backend override observes every evaluation path."""
    backend = CountingBackend()
    ansatz = build_qaoa_ansatz(er6, 2, ("rx",))
    program = compile_ansatz(ansatz, backend=backend)
    x = np.full(ansatz.num_parameters, 0.3)
    program.energy(x)
    program.energies(np.stack([x, -x]))
    program.gradient(x)
    for op in ("exp", "take", "multiply", "einsum"):
        assert backend.calls.get(op, 0) > 0, f"{op} never routed"


def test_contraction_ops_routed_for_multiqubit_columns():
    """Non-diagonal multi-qubit gates exercise the tensordot/moveaxis
    kernels; those must route through the backend too."""
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.parameters import Parameter
    from repro.simulators.compiled import compile_circuit

    theta = Parameter("t")
    qc = QuantumCircuit(3)
    qc.rxx(theta, 0, 1).rxx(theta, 1, 2)
    backend = CountingBackend()
    program = compile_circuit(qc, [theta], backend=backend)
    program.state([0.4])
    program.states(np.array([[0.4], [0.9]]))
    assert backend.calls.get("tensordot", 0) > 0
    assert backend.calls.get("moveaxis", 0) > 0


# -- the knob on AnsatzEnergy ------------------------------------------------


class TestAnsatzEnergyKnob:
    def test_unknown_backend_rejected_eagerly(self, er6):
        ansatz = build_qaoa_ansatz(er6, 1, ("rx",))
        with pytest.raises(ValueError, match="unknown array backend"):
            AnsatzEnergy(ansatz, array_backend="tpu")

    def test_backend_instance_accepted(self, er6):
        ansatz = build_qaoa_ansatz(er6, 1, ("rx",))
        backend = MockGPUArrayBackend()
        energy = AnsatzEnergy(ansatz, array_backend=backend)
        assert energy.array_backend is backend
        assert energy.program.backend is backend

    def test_default_is_numpy(self, er6):
        ansatz = build_qaoa_ansatz(er6, 1, ("rx",))
        energy = AnsatzEnergy(ansatz)
        assert isinstance(energy.array_backend, ArrayBackend)
        assert energy.array_backend.name == "numpy"
