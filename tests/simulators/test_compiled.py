"""Compiled engine: equivalence against the dense oracle (and qtensor).

The compiled program must be *indistinguishable* from the statevector
engine — energies and parameter-shift gradients pinned to 1e-10 across the
full mixer token alphabet, random depths, both ``initial_hadamard``
settings, and batched vs. single evaluation — because the search treats
the two engines as interchangeable via one config flag.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_REGISTRY
from repro.circuits.parameters import Parameter
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.mixers import MIXER_TOKENS
from repro.simulators.compiled import CompiledProgram, compile_ansatz, compile_circuit
from repro.simulators.statevector import plus_state, simulate, zero_state

ATOL = 1e-10


@pytest.fixture(scope="module")
def er6():
    return erdos_renyi_graph(6, 0.5, seed=21, require_connected=True)


def _engines(ansatz):
    return (
        AnsatzEnergy(ansatz, engine="compiled"),
        AnsatzEnergy(ansatz, engine="statevector"),
    )


# -- diag_phase is the compiled engine's ground truth ------------------------


def test_every_diagonal_spec_publishes_its_phase_generator():
    rng = np.random.default_rng(7)
    for name, spec in GATE_REGISTRY.items():
        if not spec.is_diagonal:
            assert spec.diag_phase is None
            continue
        params = list(rng.uniform(-3, 3, spec.num_params))
        expected = np.diag(spec.matrix_fn(params))
        actual = np.exp(1j * spec.diag_exponent(params))
        np.testing.assert_allclose(actual, expected, atol=1e-14, err_msg=name)


def test_diag_exponent_rejects_non_diagonal():
    with pytest.raises(ValueError, match="not diagonal"):
        GATE_REGISTRY["h"].diag_exponent()


# -- property-style equivalence over the token alphabet ----------------------


@settings(max_examples=40, deadline=None)
@given(
    tokens=st.lists(st.sampled_from(MIXER_TOKENS), min_size=1, max_size=4),
    p=st.integers(1, 3),
    initial_hadamard=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_energy_matches_statevector(tokens, p, initial_hadamard, seed):
    graph = cycle_graph(5)
    ansatz = build_qaoa_ansatz(
        graph, p, tuple(tokens), initial_hadamard=initial_hadamard
    )
    compiled, oracle = _engines(ansatz)
    x = np.random.default_rng(seed).uniform(-np.pi, np.pi, ansatz.num_parameters)
    assert compiled.value(x) == pytest.approx(oracle.value(x), abs=ATOL)


@settings(max_examples=20, deadline=None)
@given(
    tokens=st.lists(st.sampled_from(MIXER_TOKENS), min_size=1, max_size=3),
    p=st.integers(1, 2),
    initial_hadamard=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_gradient_matches_statevector(tokens, p, initial_hadamard, seed):
    graph = cycle_graph(4)
    ansatz = build_qaoa_ansatz(
        graph, p, tuple(tokens), initial_hadamard=initial_hadamard
    )
    compiled, oracle = _engines(ansatz)
    x = np.random.default_rng(seed).uniform(-np.pi, np.pi, ansatz.num_parameters)
    np.testing.assert_allclose(
        compiled.gradient(x), oracle.gradient(x), atol=ATOL
    )


@settings(max_examples=15, deadline=None)
@given(
    tokens=st.lists(st.sampled_from(MIXER_TOKENS), min_size=1, max_size=3),
    seed=st.integers(0, 2**31 - 1),
)
def test_batched_matches_single(tokens, seed):
    graph = cycle_graph(5)
    ansatz = build_qaoa_ansatz(graph, 2, tuple(tokens))
    program = compile_ansatz(ansatz)
    X = np.random.default_rng(seed).uniform(-np.pi, np.pi, (6, ansatz.num_parameters))
    batched = program.energies(X)
    single = np.array([program.energy(row) for row in X])
    np.testing.assert_allclose(batched, single, atol=1e-12)


def test_qtensor_agrees_where_supported(er6):
    """Third engine cross-check on the paper's winning mixer."""
    ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
    compiled = AnsatzEnergy(ansatz, engine="compiled")
    qtensor = AnsatzEnergy(ansatz, engine="qtensor")
    x = [0.3, -0.2, 0.5, 0.1]
    assert compiled.value(x) == pytest.approx(qtensor.value(x), abs=1e-9)


# -- paper-workload pinning --------------------------------------------------


@pytest.mark.parametrize("tokens", [("rx",), ("rx", "ry"), ("ry", "p"), ("h", "rz")])
@pytest.mark.parametrize("initial_hadamard", [True, False])
def test_paper_scale_energy_and_gradient(tokens, initial_hadamard):
    graph = erdos_renyi_graph(10, 0.5, seed=3, require_connected=True)
    ansatz = build_qaoa_ansatz(graph, 4, tokens, initial_hadamard=initial_hadamard)
    compiled, oracle = _engines(ansatz)
    x = np.random.default_rng(11).uniform(-np.pi, np.pi, ansatz.num_parameters)
    assert compiled.value(x) == pytest.approx(oracle.value(x), abs=ATOL)
    np.testing.assert_allclose(compiled.gradient(x), oracle.gradient(x), atol=ATOL)


def test_final_state_matches_dense_simulation(er6):
    ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
    compiled, oracle = _engines(ansatz)
    x = np.random.default_rng(5).uniform(-1, 1, ansatz.num_parameters)
    np.testing.assert_allclose(
        compiled.final_state(x), oracle.final_state(x), atol=ATOL
    )


# -- program structure -------------------------------------------------------


def test_cost_layer_fuses_to_one_op(er6):
    """Each cost layer (m rzz gates) plus adjacent diagonal mixer columns
    must collapse into a single fused diagonal block."""
    ansatz = build_qaoa_ansatz(er6, 3, ("rx",))
    program = compile_ansatz(ansatz)
    # H column folds into |+>, then per layer: one diag block + one fused
    # rx column (shared angle -> one op covering all qubits).
    assert program.initial_state_label == "+"
    assert program.num_ops == 2 * 3
    assert program.source_gates == 6 + 3 * (er6.num_edges + 6)


def test_shift_site_count_matches_parameterized_occurrences(er6):
    ansatz = build_qaoa_ansatz(er6, 2, ("rx", "ry"))
    program = compile_ansatz(ansatz)
    expected = 2 * (er6.num_edges + 2 * 6)  # p * (rzz edges + 2 tokens x 6 qubits)
    assert program.num_shift_sites == expected


def test_gradient_evaluation_accounting(er6):
    """The compiled engine reports the same 2-evals-per-occurrence cost
    model as the dense engine."""
    ansatz = build_qaoa_ansatz(er6, 1, ("rx",))
    compiled, oracle = _engines(ansatz)
    compiled.gradient([0.2, 0.3])
    oracle.gradient([0.2, 0.3])
    assert compiled.num_evaluations == oracle.num_evaluations


# -- generic circuits via compile_circuit ------------------------------------


def test_compile_circuit_state_without_graph():
    theta = Parameter("theta")
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).rz(theta * 2.0, 1).rxx(theta, 0, 2).u3(0.3, 0.2, 0.1, 2)
    program = compile_circuit(qc, [theta])
    dense = simulate(qc, zero_state(3), {theta: 0.7})
    np.testing.assert_allclose(program.state([0.7]), dense, atol=ATOL)
    with pytest.raises(ValueError, match="without a graph"):
        program.energy([0.7])


def test_compile_circuit_plus_initial_state():
    theta = Parameter("t")
    qc = QuantumCircuit(2)
    qc.rzz(theta, 0, 1).ry(0.4, 0)
    program = compile_circuit(qc, [theta], initial_state="+")
    dense = simulate(qc, plus_state(2), {theta: -1.2})
    np.testing.assert_allclose(program.state([-1.2]), dense, atol=ATOL)


def test_unknown_parameter_rejected():
    theta, phi = Parameter("theta"), Parameter("phi")
    qc = QuantumCircuit(1)
    qc.rx(phi, 0)
    with pytest.raises(ValueError, match="phi"):
        compile_circuit(qc, [theta])


def test_u3_energy_works_but_gradient_raises(er6):
    """Non-shiftable parameterized gates evaluate fine and fail the
    gradient exactly like the dense engine does."""
    theta = Parameter("theta")
    qc = QuantumCircuit(2)
    qc.u3(theta, 0.1, 0.2, 0).rzz(theta * -1.0, 0, 1)
    from repro.graphs.generators import path_graph

    program = compile_circuit(qc, [theta], graph=path_graph(2))
    assert isinstance(program, CompiledProgram)
    assert np.isfinite(program.energy([0.5]))
    with pytest.raises(NotImplementedError, match="u3"):
        program.gradient([0.5])


def test_partial_hadamard_prefix_not_folded():
    """An incomplete H column must stay in the program, not fold to |+>."""
    qc = QuantumCircuit(2)
    qc.h(0).rz(0.3, 0).h(1)
    program = compile_circuit(qc, [])
    assert program.initial_state_label == "0"
    np.testing.assert_allclose(program.state([]), simulate(qc), atol=ATOL)


def test_wrong_parameter_count_rejected(er6):
    program = compile_ansatz(build_qaoa_ansatz(er6, 2))
    with pytest.raises(ValueError, match="expected 4 parameters"):
        program.energy([0.1, 0.2])
