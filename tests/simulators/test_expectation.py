"""Observable expectation evaluation."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import Graph, complete_graph, cycle_graph, path_graph
from repro.simulators.expectation import (
    bit_table,
    cut_values,
    maxcut_expectation,
    pauli_expectation,
    z_expectations,
    zz_expectation,
)
from repro.simulators.statevector import basis_state, plus_state, simulate


class TestBitTable:
    def test_shape_and_values(self):
        table = bit_table(3)
        assert table.shape == (8, 3)
        assert list(table[5]) == [1, 0, 1]  # 5 = 0b101, bit k at column k

    def test_cached_identity(self):
        assert bit_table(4) is bit_table(4)


class TestCutValues:
    def test_single_edge(self):
        g = Graph(2, ((0, 1),))
        np.testing.assert_array_equal(cut_values(g), [0, 1, 1, 0])

    def test_weighted_edge(self):
        g = Graph(2, ((0, 1),), (2.5,))
        np.testing.assert_array_equal(cut_values(g), [0, 2.5, 2.5, 0])

    def test_empty_graph(self):
        np.testing.assert_array_equal(cut_values(Graph(2, ())), np.zeros(4))

    def test_triangle_max_is_two(self):
        values = cut_values(complete_graph(3))
        assert values.max() == 2.0
        assert values[0] == 0.0  # all same side

    def test_bipartite_full_cut(self):
        # path 0-1-2: assignment 0b010 cuts both edges
        values = cut_values(path_graph(3))
        assert values[0b010] == 2.0

    def test_matches_bruteforce_loop(self):
        g = cycle_graph(5)
        values = cut_values(g)
        for z in range(2**5):
            manual = sum(
                1.0 for (u, v) in g.edges if ((z >> u) & 1) != ((z >> v) & 1)
            )
            assert values[z] == manual


class TestMaxcutExpectation:
    def test_plus_state_half_edges(self):
        g = cycle_graph(6)
        assert maxcut_expectation(plus_state(6), g) == pytest.approx(3.0)

    def test_basis_state_exact_cut(self):
        g = path_graph(3)
        assert maxcut_expectation(basis_state(3, 0b010), g) == pytest.approx(2.0)

    def test_weighted(self):
        g = Graph(2, ((0, 1),), (3.0,))
        assert maxcut_expectation(basis_state(2, 1), g) == pytest.approx(3.0)


class TestPauliExpectations:
    def test_z_on_zero(self):
        psi = basis_state(1, 0)
        assert pauli_expectation(psi, "Z") == pytest.approx(1.0)

    def test_z_on_one(self):
        assert pauli_expectation(basis_state(1, 1), "Z") == pytest.approx(-1.0)

    def test_x_on_plus(self):
        assert pauli_expectation(plus_state(1), "X") == pytest.approx(1.0)

    def test_y_on_plus_is_zero(self):
        assert pauli_expectation(plus_state(1), "Y") == pytest.approx(0.0, abs=1e-12)

    def test_identity_string(self):
        assert pauli_expectation(plus_state(2), "II") == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            pauli_expectation(plus_state(2), "Z")

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="invalid Pauli"):
            pauli_expectation(plus_state(1), "Q")

    def test_zz_on_bell(self):
        psi = simulate(QuantumCircuit(2).h(0).cx(0, 1))
        assert pauli_expectation(psi, "ZZ") == pytest.approx(1.0)
        assert pauli_expectation(psi, "XX") == pytest.approx(1.0)
        assert pauli_expectation(psi, "YY") == pytest.approx(-1.0)

    def test_zz_helper_matches_pauli_string(self):
        psi = simulate(QuantumCircuit(3).h(0).cx(0, 1).ry(0.4, 2))
        via_helper = zz_expectation(psi, 0, 1, 3)
        via_string = pauli_expectation(psi, "ZZI")
        assert via_helper == pytest.approx(via_string)

    def test_z_expectations_vector(self):
        psi = basis_state(3, 0b101)
        np.testing.assert_allclose(z_expectations(psi, 3), [-1, 1, -1])

    def test_consistency_z_vector_vs_strings(self):
        psi = simulate(QuantumCircuit(2).ry(0.8, 0).ry(-0.3, 1))
        zs = z_expectations(psi, 2)
        assert zs[0] == pytest.approx(pauli_expectation(psi, "ZI"))
        assert zs[1] == pytest.approx(pauli_expectation(psi, "IZ"))
