"""Kraus channels and the density-matrix simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import path_graph
from repro.simulators.expectation import cut_values
from repro.simulators.noise import (
    DensityMatrixSimulator,
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
)
from repro.simulators.statevector import simulate


class TestChannels:
    def test_trace_preservation_enforced(self):
        bad = (np.eye(2, dtype=complex) * 0.5,)
        with pytest.raises(ValueError, match="trace preserving"):
            KrausChannel("bad", bad)

    @pytest.mark.parametrize("factory,arg", [
        (depolarizing_channel, 0.1),
        (bit_flip_channel, 0.2),
        (phase_flip_channel, 0.3),
        (amplitude_damping_channel, 0.4),
    ])
    def test_standard_channels_valid(self, factory, arg):
        channel = factory(arg)
        total = sum(k.conj().T @ k for k in channel.operators)
        np.testing.assert_allclose(total, np.eye(2), atol=1e-12)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            bit_flip_channel(1.5)

    def test_zero_noise_is_identity_channel(self):
        channel = depolarizing_channel(0.0)
        assert len([k for k in channel.operators if np.abs(k).sum() > 1e-12]) == 1


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.3, 1)
        rho = DensityMatrixSimulator().run(qc)
        psi = simulate(qc)
        np.testing.assert_allclose(rho, np.outer(psi, psi.conj()), atol=1e-12)

    def test_trace_one_under_noise(self):
        model = NoiseModel(default=depolarizing_channel(0.05))
        qc = QuantumCircuit(2).h(0).cx(0, 1).rx(0.4, 0)
        rho = DensityMatrixSimulator(model).run(qc)
        assert np.trace(rho).real == pytest.approx(1.0, abs=1e-10)
        assert abs(np.trace(rho).imag) < 1e-12

    def test_hermitian_and_psd(self):
        model = NoiseModel(default=amplitude_damping_channel(0.2))
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        rho = DensityMatrixSimulator(model).run(qc)
        np.testing.assert_allclose(rho, rho.conj().T, atol=1e-12)
        eigs = np.linalg.eigvalsh(rho)
        assert eigs.min() > -1e-10

    def test_full_depolarizing_gives_maximally_mixed(self):
        model = NoiseModel(default=depolarizing_channel(1.0))
        qc = QuantumCircuit(1).h(0)
        rho = DensityMatrixSimulator(model).run(qc)
        np.testing.assert_allclose(rho, np.eye(2) / 2, atol=1e-12)

    def test_bit_flip_decays_purity(self):
        model = NoiseModel(default=bit_flip_channel(0.3))
        qc = QuantumCircuit(1).x(0)
        rho = DensityMatrixSimulator(model).run(qc)
        # after X then 30% bit flip: P(|1>) = 0.7
        assert rho[1, 1].real == pytest.approx(0.7)

    def test_per_gate_noise_targeting(self):
        model = NoiseModel(per_gate={"h": bit_flip_channel(0.5)})
        qc = QuantumCircuit(1).x(0)  # x has no attached noise
        rho = DensityMatrixSimulator(model).run(qc)
        assert rho[1, 1].real == pytest.approx(1.0)

    def test_pure_state_initial(self):
        psi = simulate(QuantumCircuit(1).h(0))
        rho = DensityMatrixSimulator().run(QuantumCircuit(1).z(0), initial_state=psi)
        expected = simulate(QuantumCircuit(1).h(0).z(0))
        np.testing.assert_allclose(rho, np.outer(expected, expected.conj()), atol=1e-12)

    def test_expectation_diagonal(self):
        g = path_graph(2)
        qc = QuantumCircuit(2).x(0)
        rho = DensityMatrixSimulator().run(qc)
        energy = DensityMatrixSimulator.expectation(rho, cut_values(g))
        assert energy == pytest.approx(1.0)

    def test_noise_degrades_qaoa_energy(self):
        """Noisy mixers should lose cut energy — the ranking signal the
        evaluator would use under noise."""
        from repro.qaoa.ansatz import build_qaoa_ansatz
        from repro.graphs.generators import cycle_graph

        g = cycle_graph(4)
        ansatz = build_qaoa_ansatz(g, 1)
        bound = ansatz.bind([0.6, -0.4])
        clean = DensityMatrixSimulator().run(bound)
        noisy = DensityMatrixSimulator(
            NoiseModel(default=depolarizing_channel(0.08))
        ).run(bound)
        cuts = cut_values(g)
        e_clean = DensityMatrixSimulator.expectation(clean, cuts)
        e_noisy = DensityMatrixSimulator.expectation(noisy, cuts)
        assert abs(e_noisy - g.num_edges / 2) < abs(e_clean - g.num_edges / 2) or e_noisy < e_clean
