"""State-vector simulator correctness."""

import numpy as np
import pytest
from tests.conftest import random_circuit

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.circuits.parameters import Parameter
from repro.simulators.statevector import (
    apply_gate,
    basis_state,
    circuit_unitary,
    plus_state,
    sample_counts,
    simulate,
    zero_state,
)

SQ2 = 1 / np.sqrt(2)


class TestStates:
    def test_zero_state(self):
        s = zero_state(3)
        assert s[0] == 1.0 and np.count_nonzero(s) == 1

    def test_plus_state_uniform(self):
        s = plus_state(4)
        np.testing.assert_allclose(np.abs(s) ** 2, np.full(16, 1 / 16))

    def test_basis_state(self):
        s = basis_state(3, 5)
        assert s[5] == 1.0 and np.count_nonzero(s) == 1

    def test_basis_state_range_check(self):
        with pytest.raises(ValueError):
            basis_state(2, 4)


class TestKnownCircuits:
    def test_bell_state(self):
        psi = simulate(QuantumCircuit(2).h(0).cx(0, 1))
        np.testing.assert_allclose(psi, [SQ2, 0, 0, SQ2], atol=1e-12)

    def test_ghz_state(self):
        psi = simulate(QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2))
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = SQ2
        np.testing.assert_allclose(psi, expected, atol=1e-12)

    def test_x_flips_correct_qubit(self):
        # qubit k = bit k: X on qubit 1 of |00> -> index 2
        psi = simulate(QuantumCircuit(2).x(1))
        assert np.argmax(np.abs(psi)) == 2

    def test_cx_control_is_first_argument(self):
        # control qubit 1 set -> target qubit 0 flips: |10> (idx 2) -> |11> (idx 3)
        psi = simulate(QuantumCircuit(2).x(1).cx(1, 0))
        assert np.argmax(np.abs(psi)) == 3

    def test_cx_idle_control(self):
        psi = simulate(QuantumCircuit(2).cx(0, 1))
        assert np.argmax(np.abs(psi)) == 0

    def test_swap(self):
        psi = simulate(QuantumCircuit(2).x(0).swap(0, 1))
        assert np.argmax(np.abs(psi)) == 2

    def test_hadamard_layer_gives_plus(self):
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.h(q)
        np.testing.assert_allclose(simulate(qc), plus_state(3), atol=1e-12)

    def test_rz_phase_on_superposition(self):
        psi = simulate(QuantumCircuit(1).h(0).rz(np.pi / 2, 0))
        expected = np.array([np.exp(-1j * np.pi / 4), np.exp(1j * np.pi / 4)]) * SQ2
        np.testing.assert_allclose(psi, expected, atol=1e-12)


class TestApplyGate:
    def test_matches_kron_for_one_qubit(self, rng):
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        u = gate_matrix("ry", 0.7)
        # qubit 1 of 3 (little-endian): I (x) U (x) I
        full = np.kron(np.eye(2), np.kron(u, np.eye(2)))
        np.testing.assert_allclose(apply_gate(psi, u, [1], 3), full @ psi, atol=1e-12)

    def test_matches_kron_for_adjacent_pair(self, rng):
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        u = gate_matrix("rzz", 0.9)
        # qubits (0,1): matrix indexes |q1 q0> -> kron(I, U) with U on low bits
        full = np.kron(np.eye(2), u)
        np.testing.assert_allclose(apply_gate(psi, u, [0, 1], 3), full @ psi, atol=1e-12)

    def test_non_adjacent_pair_against_unitary(self, rng):
        qc = QuantumCircuit(3).rxx(0.8, 2, 0)
        u = circuit_unitary(qc)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        np.testing.assert_allclose(
            simulate(qc, psi), u @ psi, atol=1e-12
        )

    def test_wrong_matrix_shape(self):
        with pytest.raises(ValueError, match="matrix shape"):
            apply_gate(zero_state(2), np.eye(2), [0, 1], 2)

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError, match="duplicate"):
            apply_gate(zero_state(2), np.eye(4), [0, 0], 2)


class TestSimulate:
    def test_norm_preserved_random(self):
        for seed in range(3):
            psi = simulate(random_circuit(4, 40, seed=seed))
            assert np.linalg.norm(psi) == pytest.approx(1.0, abs=1e-10)

    def test_initial_state_dimension_check(self):
        with pytest.raises(ValueError, match="dimension"):
            simulate(QuantumCircuit(2).h(0), zero_state(3))

    def test_initial_state_not_mutated(self):
        init = plus_state(2)
        before = init.copy()
        simulate(QuantumCircuit(2).x(0), init)
        np.testing.assert_array_equal(init, before)

    def test_symbolic_binding(self):
        theta = Parameter("t")
        psi = simulate(QuantumCircuit(1).ry(theta, 0), bindings={theta: np.pi})
        np.testing.assert_allclose(psi, [0, 1], atol=1e-12)

    def test_unbound_raises(self):
        theta = Parameter("t")
        with pytest.raises(ValueError):
            simulate(QuantumCircuit(1).ry(theta, 0))


class TestCircuitUnitary:
    def test_unitary_columns_are_basis_images(self, rng):
        qc = random_circuit(3, 20, seed=7)
        u = circuit_unitary(qc)
        for j in [0, 3, 7]:
            np.testing.assert_allclose(u[:, j], simulate(qc, basis_state(3, j)), atol=1e-12)

    def test_unitarity(self):
        u = circuit_unitary(random_circuit(3, 30, seed=8))
        np.testing.assert_allclose(u @ u.conj().T, np.eye(8), atol=1e-10)


class TestSampling:
    def test_deterministic_state(self):
        counts = sample_counts(basis_state(2, 3), 100, seed=0)
        assert counts == {3: 100}

    def test_uniform_state_frequencies(self):
        counts = sample_counts(plus_state(2), 40000, seed=1)
        for idx in range(4):
            assert counts[idx] == pytest.approx(10000, rel=0.1)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError, match="normalized"):
            sample_counts(np.array([1.0, 1.0], dtype=complex), 10)

    def test_reproducible_with_seed(self):
        a = sample_counts(plus_state(3), 100, seed=5)
        b = sample_counts(plus_state(3), 100, seed=5)
        assert a == b
