"""Surrogate-assisted search against the unfiltered baseline.

Three end-to-end guarantees: an ``explore_floor=1.0`` surrogate run
degenerates to the base search exactly (same per-depth bests, same
winner); an actually-pruning run evaluates strictly fewer candidates; and
the fingerprint scheme keeps surrogate and plain runs from ever aliasing
each other's depth checkpoints while still sharing candidate-level cache
entries (evaluations are pure functions of the evaluation config).
"""

import pytest

from repro.api import Config, search
from repro.core.runtime import RuntimeConfig, SearchRuntime
from repro.core.search import SearchConfig
from repro.graphs.datasets import DATASET_FAMILIES
from repro.surrogate import SurrogateConfig

FAST = dict(k_min=1, k_max=2, steps=6)


def run(tmp_path=None, **overrides):
    config = Config(**FAST, **overrides)
    return search("er:2", depths=3, config=config)


class TestEquivalence:
    def test_floor_one_degenerates_to_base_search(self):
        baseline = run()
        degenerate = run(surrogate=True, explore_floor=1.0)
        assert degenerate.best_tokens == baseline.best_tokens
        assert degenerate.best_p == baseline.best_p
        assert degenerate.best_ratio == pytest.approx(
            baseline.best_ratio, abs=1e-12
        )
        for plain_depth, surr_depth in zip(
            baseline.depth_results, degenerate.depth_results
        ):
            assert surr_depth.best.tokens == plain_depth.best.tokens
            assert surr_depth.best.ratio == pytest.approx(
                plain_depth.best.ratio, abs=1e-12
            )
        # same candidates evaluated — nothing was pruned
        assert degenerate.config["surrogate_skipped"] == 0
        assert (
            degenerate.config["jobs_submitted"]
            == baseline.config["jobs_submitted"]
        )

    def test_pruning_run_evaluates_fewer_candidates(self):
        baseline = run()
        pruned = run(surrogate=True, surrogate_keep=0.3, explore_floor=0.1)
        assert (
            pruned.config["jobs_submitted"] < baseline.config["jobs_submitted"]
        )
        assert pruned.config["surrogate_skipped"] > 0
        assert pruned.config["surrogate"] is True
        assert baseline.config["surrogate"] is False

    def test_surrogate_runs_are_seeded_deterministic(self):
        kwargs = dict(surrogate=True, surrogate_keep=0.3, explore_floor=0.2)
        first = run(**kwargs)
        second = run(**kwargs)
        assert first.best_tokens == second.best_tokens
        assert first.config["surrogate_kept"] == second.config["surrogate_kept"]
        assert (
            first.config["surrogate_skipped"]
            == second.config["surrogate_skipped"]
        )


class TestFingerprintSensitivity:
    def test_checkpoints_never_alias_but_cache_entries_share(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plain = run(cache_dir=cache_dir)
        resumed_plain = run(cache_dir=cache_dir, resume=True)
        assert resumed_plain.config["restored_depths"] == 3

        # the surrogate run must not restore the plain run's checkpoints...
        surrogate = run(
            cache_dir=cache_dir, resume=True, surrogate=True, explore_floor=1.0
        )
        assert surrogate.config["restored_depths"] == 0
        # ...but candidate evaluations ARE shared: every candidate the
        # degenerate surrogate sweep wants is already cached
        assert surrogate.config["jobs_submitted"] == 0
        assert surrogate.config["cache_hits"] == plain.config["jobs_submitted"]

        # and the plain run never restores surrogate checkpoints either
        resumed_again = run(cache_dir=cache_dir, resume=True)
        assert resumed_again.config["restored_depths"] == 3

    def test_different_surrogate_settings_never_alias(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run(
            cache_dir=cache_dir, surrogate=True, explore_floor=1.0
        )
        assert first.config["restored_depths"] == 0
        same = run(
            cache_dir=cache_dir, resume=True, surrogate=True, explore_floor=1.0
        )
        assert same.config["restored_depths"] == 3  # identical settings restore
        other = run(
            cache_dir=cache_dir,
            resume=True,
            surrogate=True,
            explore_floor=1.0,
            surrogate_keep=0.3,
        )
        assert other.config["restored_depths"] == 0  # any knob change re-runs

    def test_depth_fingerprint_carries_surrogate_suffix(self):
        graphs = DATASET_FAMILIES["er"][1](2, dataset_seed=2023)
        plain_cfg = SearchConfig(p_max=1, k_max=1)
        surr_cfg = SearchConfig(
            p_max=1, k_max=1, surrogate=SurrogateConfig(enabled=True)
        )
        with SearchRuntime(graphs, plain_cfg) as plain_rt, SearchRuntime(
            graphs, surr_cfg
        ) as surr_rt:
            assert plain_rt._depth_config_fp == plain_rt._config_fp
            assert surr_rt._depth_config_fp != surr_rt._config_fp
            assert surr_rt._config_fp == plain_rt._config_fp  # shared keys
            assert (
                SurrogateConfig(enabled=True).fingerprint()
                in surr_rt._depth_config_fp
            )


class TestGuards:
    def test_surrogate_forbidden_with_shard_index(self):
        graphs = DATASET_FAMILIES["er"][1](2, dataset_seed=2023)
        config = SearchConfig(
            p_max=1, k_max=1, surrogate=SurrogateConfig(enabled=True)
        )
        with pytest.raises(ValueError, match="shard_index"):
            SearchRuntime(
                graphs,
                config,
                runtime=RuntimeConfig(shards=2, shard_index=0, cache_dir=None),
            )

    def test_bad_surrogate_knobs_rejected_through_flat_config(self):
        with pytest.raises(ValueError, match="keep_fraction"):
            Config(surrogate=True, surrogate_keep=0.0).search_config(2)
        with pytest.raises(ValueError, match="explore_floor"):
            Config(surrogate=True, explore_floor=1.5).search_config(2)

    def test_flat_config_round_trips_surrogate_fields(self):
        config = Config(surrogate=True, surrogate_keep=0.25, explore_floor=0.3)
        again = Config.from_dict(config.to_dict())
        assert again == config
        search_cfg = again.search_config(2)
        assert search_cfg.surrogate.enabled
        assert search_cfg.surrogate.keep_fraction == 0.25
        assert search_cfg.surrogate.explore_floor == 0.3
