"""Unit tests of the surrogate layer: config, model, cost, selection."""

import numpy as np
import pytest

from repro.core.alphabet import DEFAULT_TOKENS, GateAlphabet
from repro.core.predictor import ExhaustivePredictor, RandomPredictor
from repro.core.results import CandidateEvaluation
from repro.core.runtime import predicted_cost
from repro.obs.metrics import MetricsRegistry
from repro.surrogate import (
    CostModel,
    SurrogateAssistant,
    SurrogateConfig,
    SurrogateModel,
    SurrogateRankedPredictor,
    rank_and_select,
)
from repro.utils.rng import as_rng

ALPHABET = GateAlphabet(DEFAULT_TOKENS)


def sequences(count, seed=0, max_len=3):
    rng = as_rng(seed)
    return [
        tuple(rng.choice(DEFAULT_TOKENS, size=int(rng.integers(1, max_len + 1))))
        for _ in range(count)
    ]


def evaluation(tokens, p=1, ratio=None, seconds=0.01):
    return CandidateEvaluation(
        tokens=tokens,
        p=p,
        energy=1.0,
        ratio=0.2 * len(tokens) if ratio is None else ratio,
        seconds=seconds,
    )


class TestSurrogateConfig:
    def test_defaults_disabled(self):
        assert not SurrogateConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep_fraction": 0.0},
            {"keep_fraction": 1.5},
            {"explore_floor": -0.1},
            {"explore_floor": 1.1},
            {"min_observations": 0},
            {"embedding_dim": 0},
            {"hidden_dim": 0},
            {"train_epochs": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SurrogateConfig(**kwargs)

    def test_fingerprint_sensitive_to_every_knob(self):
        base = SurrogateConfig(enabled=True)
        variants = [
            SurrogateConfig(enabled=True, keep_fraction=0.3),
            SurrogateConfig(enabled=True, explore_floor=0.2),
            SurrogateConfig(enabled=True, min_observations=9),
            SurrogateConfig(enabled=True, seed=1),
            SurrogateConfig(enabled=True, cost_model=False),
            SurrogateConfig(enabled=False),
        ]
        prints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)
        assert base.fingerprint() == SurrogateConfig(enabled=True).fingerprint()


class TestSurrogateModel:
    def test_learns_a_length_signal(self):
        model = SurrogateModel(
            ALPHABET, embedding_dim=4, hidden_dim=8, train_epochs=40, seed=1
        )
        train = sequences(40, seed=2)
        for tokens in train:
            model.observe(tokens, 1, float(len(tokens)))
        assert model.fit() is not None
        assert model.trained
        short = model.predict(("rx",), 1)
        long = model.predict(("rx", "ry", "rz"), 1)
        assert long > short  # ranking signal, not exact regression

    def test_deterministic_given_seed(self):
        scores = []
        for _ in range(2):
            model = SurrogateModel(
                ALPHABET, embedding_dim=4, hidden_dim=6, train_epochs=10, seed=5
            )
            for tokens in sequences(12, seed=3):
                model.observe(tokens, 1, float(len(tokens)))
            model.fit()
            scores.append(model.predict_many(sequences(6, seed=4), 1))
        np.testing.assert_array_equal(scores[0], scores[1])

    def test_fit_is_lazy(self):
        model = SurrogateModel(ALPHABET, train_epochs=2, seed=0)
        assert model.fit() is None  # nothing observed
        for tokens in sequences(4):
            model.observe(tokens, 1, 0.5)
        assert model.fit() is not None
        assert model.fit() is None  # no new rows since

    def test_buffer_trims_to_max(self):
        model = SurrogateModel(ALPHABET, max_buffer=10, train_epochs=1, seed=0)
        for tokens in sequences(25, seed=6):
            model.observe(tokens, 1, 0.1)
        assert len(model._buffer) == 10
        assert model.observations == 25


class TestCostModel:
    def test_static_heuristic_until_fitted(self):
        model = CostModel()
        assert not model.fitted
        assert model.predict(("rx", "ry"), 3) == predicted_cost(("rx", "ry"), 3)

    def test_fits_measured_seconds(self):
        model = CostModel()
        rng = as_rng(0)
        for tokens in sequences(30, seed=7):
            p = int(rng.integers(1, 4))
            # ground truth deliberately unlike the static heuristic
            model.observe(tokens, p, 0.5 + 2.0 * len(tokens))
        model.fit()
        assert model.fitted
        assert model.predict(("rx", "ry", "rz"), 2) == pytest.approx(6.5, rel=0.05)

    def test_prediction_clamped_positive(self):
        model = CostModel(min_observations=4)
        for i in range(6):
            model.observe(("rx",), 1, 0.0)
        model.fit()
        assert model.predict(("rx",), 1) > 0.0

    def test_negative_seconds_ignored(self):
        model = CostModel()
        model.observe(("rx",), 1, -5.0)
        assert model.observations == 0


class TestRankAndSelect:
    def test_keeps_top_fraction_in_original_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.8, 0.2])
        kept = rank_and_select(
            scores, keep_fraction=0.4, explore_floor=0.0, rng=as_rng(0)
        )
        assert kept == [1, 3]  # top-2 by score, pool order preserved

    def test_at_least_one_survives(self):
        kept = rank_and_select(
            np.array([0.5]), keep_fraction=0.01, explore_floor=0.0, rng=as_rng(0)
        )
        assert kept == [0]

    def test_floor_one_keeps_everything(self):
        scores = np.arange(10, dtype=float)
        kept = rank_and_select(
            scores, keep_fraction=0.1, explore_floor=1.0, rng=as_rng(0)
        )
        assert kept == list(range(10))

    def test_floor_adds_seeded_exploration(self):
        scores = np.arange(20, dtype=float)
        no_floor = rank_and_select(
            scores, keep_fraction=0.2, explore_floor=0.0, rng=as_rng(3)
        )
        with_floor = rank_and_select(
            scores, keep_fraction=0.2, explore_floor=0.3, rng=as_rng(3)
        )
        assert set(no_floor) <= set(with_floor)
        assert len(with_floor) > len(no_floor)
        again = rank_and_select(
            scores, keep_fraction=0.2, explore_floor=0.3, rng=as_rng(3)
        )
        assert with_floor == again


class TestSurrogateAssistant:
    def make(self, **overrides):
        kwargs = dict(
            enabled=True,
            keep_fraction=0.4,
            explore_floor=0.1,
            min_observations=4,
            embedding_dim=4,
            hidden_dim=6,
            train_epochs=10,
        )
        kwargs.update(overrides)
        return SurrogateAssistant(ALPHABET, SurrogateConfig(**kwargs))

    def test_requires_enabled_config(self):
        with pytest.raises(ValueError, match="enabled"):
            SurrogateAssistant(ALPHABET, SurrogateConfig())

    def test_passes_everything_until_min_observations(self):
        assistant = self.make(min_observations=50)
        pool = sequences(10, seed=8)
        assistant.observe([evaluation(t) for t in pool])
        assert assistant.select(pool, 2) == pool
        assert assistant.skipped == 0

    def test_filters_after_training(self):
        assistant = self.make()
        pool = sequences(20, seed=9)
        assistant.observe([evaluation(t) for t in pool])
        kept = assistant.select(pool, 2)
        assert 0 < len(kept) < len(pool)
        assert assistant.kept == len(kept)
        assert assistant.skipped == len(pool) - len(kept)
        # kept preserves pool order
        positions = [pool.index(t) for t in kept]
        assert positions == sorted(positions)

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        config = SurrogateConfig(
            enabled=True,
            min_observations=4,
            embedding_dim=4,
            hidden_dim=6,
            train_epochs=5,
        )
        assistant = SurrogateAssistant(ALPHABET, config, metrics=registry)
        pool = sequences(12, seed=10)
        assistant.observe([evaluation(t) for t in pool])
        assistant.select(pool, 1)
        text = registry.render()
        assert "repro_surrogate_candidates_kept_total" in text
        assert "repro_surrogate_candidates_skipped_total" in text
        assert "repro_surrogate_ranking_seconds" in text

    def test_cost_model_feeds_predicted_cost(self):
        assistant = self.make()
        pool = sequences(20, seed=11)
        assistant.observe([evaluation(t, seconds=2.0 * len(t)) for t in pool])
        assistant.select(pool, 1)  # triggers the lazy fit
        assert assistant.cost.fitted
        assert assistant.predicted_cost(("rx", "ry"), 1) == pytest.approx(
            4.0, rel=0.2
        )

    def test_cost_model_disabled(self):
        assistant = self.make(cost_model=False)
        assert assistant.cost is None
        assert assistant.predicted_cost(("rx",), 2) == predicted_cost(("rx",), 2)


class TestSurrogateRankedPredictor:
    def config(self, **overrides):
        kwargs = dict(
            enabled=True,
            keep_fraction=0.4,
            explore_floor=0.1,
            min_observations=4,
            embedding_dim=4,
            hidden_dim=6,
            train_epochs=10,
        )
        kwargs.update(overrides)
        return SurrogateConfig(**kwargs)

    def test_proposals_subset_of_base(self):
        predictor = SurrogateRankedPredictor(
            RandomPredictor(ALPHABET, 3, seed=1), config=self.config()
        )
        for tokens in predictor.propose(10):
            predictor.update(tokens, 0.2 * len(tokens))
        pruned = predictor.propose(10)
        assert 0 < len(pruned) < 10
        assert predictor.skipped > 0

    def test_passthrough_until_trained(self):
        predictor = SurrogateRankedPredictor(
            RandomPredictor(ALPHABET, 3, seed=2), config=self.config()
        )
        assert len(predictor.propose(6)) == 6

    def test_requires_alphabet(self):
        base = ExhaustivePredictor(ALPHABET, 2)  # exposes no .alphabet
        with pytest.raises(ValueError, match="alphabet"):
            SurrogateRankedPredictor(base, config=self.config())
        wrapped = SurrogateRankedPredictor(
            base, alphabet=ALPHABET, config=self.config()
        )
        assert wrapped.exhausted() is False

    def test_exhausted_delegates(self):
        base = ExhaustivePredictor(ALPHABET, 1)
        wrapped = SurrogateRankedPredictor(
            base, alphabet=ALPHABET, config=self.config()
        )
        while not wrapped.exhausted():
            wrapped.propose(16)
        assert base.exhausted()

    def test_requires_enabled_config(self):
        with pytest.raises(ValueError, match="enabled"):
            SurrogateRankedPredictor(
                RandomPredictor(ALPHABET, 2, seed=0),
                config=SurrogateConfig(),
            )
