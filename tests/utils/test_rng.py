"""RNG plumbing determinism."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs, stable_seed


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_streams(self):
        children = spawn_rngs(42, 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(42, 3)]
        b = [g.random() for g in spawn_rngs(42, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(1), 2)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(1), 2)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("fig4", 3, 1) == stable_seed("fig4", 3, 1)

    def test_order_sensitivity(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_separator_prevents_concatenation_collision(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_mixed_types(self):
        assert stable_seed(1, "x", 2.5) != stable_seed(1, "x", 2.6)

    def test_fits_in_63_bits(self):
        for parts in [("a",), (1, 2, 3), ("fig", 999)]:
            seed = stable_seed(*parts)
            assert 0 <= seed < 2**63

    def test_usable_as_numpy_seed(self):
        np.random.default_rng(stable_seed("anything", 1))
