"""Validation helper behaviour."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
    check_qubit_index,
)


class TestCheckInteger:
    def test_plain_int(self):
        assert check_integer(5, "x") == 5

    def test_numpy_int(self):
        assert check_integer(np.int64(7), "x") == 7

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            check_integer(True, "x")

    def test_float_rejected_even_integral(self):
        with pytest.raises(TypeError):
            check_integer(3.0, "x")

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            check_integer("3", "x")

    def test_error_names_argument(self):
        with pytest.raises(TypeError, match="my_arg"):
            check_integer(1.5, "my_arg")


class TestCheckPositive:
    def test_strict_accepts_positive(self):
        assert check_positive(1, "x") == 1

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive(0, "x")

    def test_nonstrict_accepts_zero(self):
        assert check_positive(0, "x", strict=False) == 0

    def test_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive(-1, "x", strict=False)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability("half", "p")


class TestCheckQubitIndex:
    def test_valid_range(self):
        assert check_qubit_index(2, 3) == 2

    def test_upper_bound_exclusive(self):
        with pytest.raises(ValueError):
            check_qubit_index(3, 3)

    def test_negative(self):
        with pytest.raises(ValueError):
            check_qubit_index(-1, 3)
