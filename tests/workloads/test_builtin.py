"""The built-in workload encodings, oracles, and datasets.

The load-bearing invariant for every workload is the *encoding contract*:
the registered cost layer must implement ``e^{-i gamma C}`` (up to global
phase) for the same diagonal ``C`` that ``objective_values`` tabulates.
When those two agree, the compiled engine, the energy evaluator, and the
classical oracle can never disagree about what problem is being solved.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.graphs.generators import Graph, path_graph
from repro.simulators.expectation import bit_table, cut_values
from repro.simulators.statevector import simulate
from repro.workloads import available_workloads, clause_signs, get_workload

GAMMA = 0.37


def _workload_graph(key: str, seed: int = 11) -> Graph:
    """A 6-node instance drawn from the workload's own dataset family."""
    return get_workload(key).dataset(seed + 1, num_nodes=6, dataset_seed=seed)[seed]


def _uniform_plus_cost(key: str, graph: Graph, gamma: float) -> np.ndarray:
    circuit = QuantumCircuit(graph.num_nodes)
    for q in range(graph.num_nodes):
        circuit.h(q)
    get_workload(key).append_cost_layer(circuit, graph, gamma)
    return simulate(circuit)


class TestEncodingContract:
    """cost layer == e^{-i gamma C} for the tabulated C, all workloads."""

    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_cost_layer_realizes_the_objective_diagonal(self, key):
        graph = _workload_graph(key)
        table = get_workload(key).objective_values(graph)
        state = _uniform_plus_cost(key, graph, GAMMA)
        # undo the e^{-i gamma C} phases; a correct encoding leaves the
        # uniform superposition times one global phase
        unwound = state * np.exp(1j * GAMMA * table)
        reference = unwound[0]
        assert abs(reference) == pytest.approx(2 ** (-graph.num_nodes / 2), abs=1e-12)
        np.testing.assert_allclose(unwound, reference, atol=1e-12)

    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_zero_gamma_is_identity(self, key):
        graph = _workload_graph(key)
        state = _uniform_plus_cost(key, graph, 0.0)
        np.testing.assert_allclose(
            state, np.full(2**graph.num_nodes, 2 ** (-graph.num_nodes / 2)), atol=1e-12
        )


class TestClassicalOracles:
    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_optimum_is_the_table_maximum(self, key):
        problem = get_workload(key)
        graph = _workload_graph(key)
        assert problem.classical_optimum(graph) == float(
            np.max(problem.objective_values(graph))
        )

    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_brute_force_guard_on_wide_graphs(self, key):
        wide = path_graph(30)
        with pytest.raises(ValueError, match="brute force|intractable"):
            get_workload(key).classical_optimum(wide)


class TestMaxCutTables:
    def test_maxcut_table_is_the_memoized_cut_values(self, small_er_graph):
        # identity, not equality: the registry path must not copy, so the
        # compiled engine keeps sharing the per-graph memo
        assert get_workload("maxcut").objective_values(small_er_graph) is cut_values(
            small_er_graph
        )

    def test_wmaxcut_matches_naive_weighted_cut(self):
        graph = _workload_graph("wmaxcut")
        table = get_workload("wmaxcut").objective_values(graph)
        bits = bit_table(graph.num_nodes)
        for idx in (0, 7, 23, 41, 63):
            naive = sum(
                w
                for (u, v), w in zip(graph.edges, graph.weights)
                if bits[idx, u] != bits[idx, v]
            )
            assert table[idx] == pytest.approx(naive, abs=1e-12)


class TestMaxSat:
    def test_table_matches_naive_clause_count(self):
        graph = _workload_graph("maxsat")
        table = get_workload("maxsat").objective_values(graph)
        bits = bit_table(graph.num_nodes)
        for idx in (0, 5, 17, 38, 63):
            naive = 0.0
            for (u, v), w in zip(graph.edges, graph.weights):
                s_u, s_v = clause_signs(u, v)
                lit_u = bool(bits[idx, u]) if s_u > 0 else not bits[idx, u]
                lit_v = bool(bits[idx, v]) if s_v > 0 else not bits[idx, v]
                if lit_u or lit_v:
                    naive += w
            assert table[idx] == pytest.approx(naive, abs=1e-12)

    def test_clause_signs_are_stable_pure_functions(self):
        assert clause_signs(0, 1) == clause_signs(0, 1)
        assert all(s in (-1, 1) for s in clause_signs(3, 4))
        # both polarities occur across edges (otherwise it degenerates)
        signs = {clause_signs(u, v) for u in range(8) for v in range(u + 1, 8)}
        assert len(signs) > 1

    def test_rejects_nonpositive_clause_weights(self):
        bad = Graph(3, ((0, 1), (1, 2)), (1.0, -0.5))
        with pytest.raises(ValueError, match="positive"):
            get_workload("maxsat").validate_instance(bad)

    def test_table_is_read_only(self):
        table = get_workload("maxsat").objective_values(_workload_graph("maxsat"))
        with pytest.raises(ValueError):
            table[0] = 99.0


class TestIsing:
    def test_table_matches_naive_spin_sum(self):
        graph = _workload_graph("ising")
        table = get_workload("ising").objective_values(graph)
        bits = bit_table(graph.num_nodes)
        for idx in (0, 9, 33, 52, 63):
            z = 1 - 2 * bits[idx]
            naive = -sum(
                w * z[u] * z[v] for (u, v), w in zip(graph.edges, graph.weights)
            )
            assert table[idx] == pytest.approx(naive, abs=1e-12)

    def test_signed_couplings_give_signed_objectives(self):
        table = get_workload("ising").objective_values(_workload_graph("ising"))
        assert table.min() < 0 < table.max()

    def test_spin_flip_symmetry(self):
        # z -> -z leaves every two-body term invariant: table[x] == table[~x]
        graph = _workload_graph("ising")
        table = get_workload("ising").objective_values(graph)
        flipped = 2**graph.num_nodes - 1 - np.arange(2**graph.num_nodes)
        np.testing.assert_allclose(table, table[flipped], atol=1e-12)


class TestDatasets:
    @pytest.mark.parametrize("key", sorted(available_workloads()))
    def test_dataset_is_deterministic(self, key):
        problem = get_workload(key)
        first = problem.dataset(3, dataset_seed=7)
        again = problem.dataset(3, dataset_seed=7)
        assert [g.edges for g in first] == [g.edges for g in again]
        assert [g.weights for g in first] == [g.weights for g in again]

    def test_wmaxcut_reweights_the_er_topologies(self):
        plain = get_workload("maxcut").dataset(3, dataset_seed=7)
        weighted = get_workload("wmaxcut").dataset(3, dataset_seed=7)
        assert [g.edges for g in plain] == [g.edges for g in weighted]
        assert any(
            w != 1.0 for graph in weighted for w in graph.weights
        )
        assert all(
            0.25 <= w <= 1.75 for graph in weighted for w in graph.weights
        )

    def test_maxsat_weights_are_positive(self):
        for graph in get_workload("maxsat").dataset(3, dataset_seed=7):
            assert all(0.5 <= w <= 1.5 for w in graph.weights)

    def test_ising_couplings_mix_signs(self):
        weights = [
            w
            for graph in get_workload("ising").dataset(4, dataset_seed=7)
            for w in graph.weights
        ]
        assert min(weights) < 0 < max(weights)
        assert all(-1.0 <= w <= 1.0 for w in weights)
