"""MaxCut through the registry is bit-identical to the pre-registry paths.

The workload refactor's prime directive: ``workload="maxcut"`` (the default
everywhere) must reproduce the seed behavior exactly — same gates, same
statevectors, same energies, same ratios — not merely to within optimizer
noise. These tests pin that equivalence at 1e-10 or exact equality.
"""

import pytest

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.graphs.generators import erdos_renyi_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.cost_operator import append_cost_layer
from repro.simulators.compiled import compile_ansatz
from repro.simulators.expectation import cut_values, maxcut_expectation
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def graphs():
    return [erdos_renyi_graph(6, 0.5, seed=s, require_connected=True) for s in (1, 2)]


class TestCircuitEquivalence:
    def test_default_ansatz_is_the_maxcut_ansatz(self, small_er_graph):
        implicit = build_qaoa_ansatz(small_er_graph, 2, ("rx", "ry"))
        explicit = build_qaoa_ansatz(
            small_er_graph, 2, ("rx", "ry"), workload="maxcut"
        )
        assert implicit.workload == explicit.workload == "maxcut"
        def ops(a):
            return [(i.gate.name, tuple(i.qubits)) for i in a.circuit.instructions]

        assert ops(implicit) == ops(explicit)

    def test_workload_cost_layer_emits_the_seed_gates(self, small_er_graph):
        from repro.circuits.circuit import QuantumCircuit

        seed_circuit = append_cost_layer(
            QuantumCircuit(small_er_graph.num_nodes), small_er_graph, 0.37
        )
        registry_circuit = get_workload("maxcut").append_cost_layer(
            QuantumCircuit(small_er_graph.num_nodes), small_er_graph, 0.37
        )
        assert [
            (i.gate.name, tuple(i.qubits), i.gate.matrix({}).tolist())
            for i in seed_circuit.instructions
        ] == [
            (i.gate.name, tuple(i.qubits), i.gate.matrix({}).tolist())
            for i in registry_circuit.instructions
        ]


class TestCompiledEquivalence:
    def test_compiled_energy_equals_maxcut_expectation(self, small_er_graph):
        ansatz = build_qaoa_ansatz(small_er_graph, 2, ("rx",))
        program = compile_ansatz(ansatz)
        x = [0.3, -0.8, 0.5, 1.1]
        state = program.state(x)
        assert program.energy(x) == pytest.approx(
            maxcut_expectation(state, small_er_graph), abs=1e-10
        )

    def test_compiled_table_is_the_shared_memo(self, small_er_graph):
        program = compile_ansatz(build_qaoa_ansatz(small_er_graph, 1, ("rx",)))
        assert program._cut is cut_values(small_er_graph)


class TestEvaluationEquivalence:
    def test_default_config_evaluates_identically_to_explicit_maxcut(self, graphs):
        default = Evaluator(graphs, EvaluationConfig(max_steps=20, seed=5))
        explicit = Evaluator(
            graphs, EvaluationConfig(max_steps=20, seed=5, workload="maxcut")
        )
        a = default.evaluate(("rx", "ry"), 2)
        b = explicit.evaluate(("rx", "ry"), 2)
        assert a.energy == b.energy
        assert a.ratio == b.ratio
        assert a.per_graph_energy == b.per_graph_energy
        assert a.per_graph_ratio == b.per_graph_ratio
        assert a.best_params == b.best_params

    def test_best_sampled_metric_is_equivalent_too(self, graphs):
        kwargs = dict(max_steps=15, seed=7, metric="best_sampled", shots=32)
        a = Evaluator(graphs, EvaluationConfig(**kwargs)).evaluate(("rx",), 1)
        b = Evaluator(
            graphs, EvaluationConfig(workload="maxcut", **kwargs)
        ).evaluate(("rx",), 1)
        assert abs(a.energy - b.energy) < 1e-10
        assert abs(a.ratio - b.ratio) < 1e-10

    def test_classical_optima_match_brute_force(self, graphs):
        from repro.core.evaluator import classical_optima
        from repro.qaoa.maxcut import brute_force_maxcut

        assert classical_optima(graphs) == tuple(
            brute_force_maxcut(g).value for g in graphs
        )
        assert classical_optima(graphs, "maxcut") == classical_optima(graphs)
