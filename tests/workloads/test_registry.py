"""The workload registry: lookup, registration, discovery."""

import numpy as np
import pytest

from repro.workloads import (
    IsingWorkload,
    MaxCutWorkload,
    MaxSatWorkload,
    WeightedMaxCutWorkload,
    Workload,
    available_workloads,
    get_workload,
    register_workload,
)
from repro.workloads.registry import _REGISTRY, workload_summaries


class _Dummy(Workload):
    name = "dummy-test-problem"
    family = "dummy"
    summary = "a registry test double"

    def objective_values(self, graph):
        return np.zeros(2**graph.num_nodes)

    def append_cost_layer(self, circuit, graph, gamma):
        return circuit

    def dataset(self, count, *, num_nodes=10, dataset_seed=2023):
        return []


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway workloads without polluting the
    process-wide registry for the rest of the suite."""
    before = set(_REGISTRY)
    yield
    for name in set(_REGISTRY) - before:
        del _REGISTRY[name]


class TestBuiltinRegistrations:
    def test_all_four_builtin_workloads_are_registered(self):
        assert {"maxcut", "wmaxcut", "maxsat", "ising"} <= set(available_workloads())

    def test_available_is_sorted(self):
        assert list(available_workloads()) == sorted(available_workloads())

    @pytest.mark.parametrize(
        ("key", "cls"),
        [
            ("maxcut", MaxCutWorkload),
            ("wmaxcut", WeightedMaxCutWorkload),
            ("maxsat", MaxSatWorkload),
            ("ising", IsingWorkload),
        ],
    )
    def test_get_returns_the_right_type(self, key, cls):
        assert type(get_workload(key)) is cls

    def test_get_is_stable(self):
        assert get_workload("maxcut") is get_workload("maxcut")

    def test_summaries_cover_every_workload(self):
        summaries = workload_summaries()
        assert set(summaries) == set(available_workloads())
        assert all(isinstance(s, str) and s for s in summaries.values())


class TestLookupErrors:
    def test_unknown_workload_names_the_options(self):
        with pytest.raises(ValueError, match="maxcut"):
            get_workload("graph-coloring")

    def test_register_duplicate_rejected(self, scratch_registry):
        register_workload(_Dummy())
        with pytest.raises(ValueError, match="already registered"):
            register_workload(_Dummy())

    def test_register_replace_allows_override(self, scratch_registry):
        first = _Dummy()
        second = _Dummy()
        register_workload(first)
        register_workload(second, replace=True)
        assert get_workload("dummy-test-problem") is second

    def test_register_requires_a_name(self, scratch_registry):
        nameless = type("Nameless", (_Dummy,), {"name": ""})
        with pytest.raises(ValueError):
            register_workload(nameless())
